// Tests for the spike-noise models: statistical invariants of deletion and
// jitter, composition, and device profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "noise/deletion.h"
#include "noise/device_profile.h"
#include "noise/jitter.h"
#include "noise/noise.h"
#include "snn/event_buffer.h"

namespace tsnn::noise {
namespace {

/// Dense test raster: every neuron spikes at every step.
snn::SpikeRaster full_raster(std::size_t neurons, std::size_t window) {
  snn::SpikeRaster r(neurons, window);
  for (std::size_t t = 0; t < window; ++t) {
    for (std::uint32_t n = 0; n < neurons; ++n) {
      r.add(t, n);
    }
  }
  return r;
}

class DeletionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeletionSweep, RemovesApproximatelyPFraction) {
  const double p = GetParam();
  const DeletionNoise noise(p);
  const snn::SpikeRaster in = full_raster(50, 40);  // 2000 spikes
  Rng rng(77);
  const snn::SpikeRaster out = noise.apply(in, rng);
  const double kept = static_cast<double>(out.total_spikes()) /
                      static_cast<double>(in.total_spikes());
  EXPECT_NEAR(kept, 1.0 - p, 0.04) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DeletionSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

TEST(Deletion, NeverAddsOrMovesSpikes) {
  const DeletionNoise noise(0.5);
  snn::SpikeRaster in(4, 10);
  in.add(2, 1);
  in.add(5, 3);
  in.add(7, 0);
  Rng rng(3);
  const snn::SpikeRaster out = noise.apply(in, rng);
  // Every surviving event must exist in the input.
  const auto in_events = in.to_events();
  for (const auto& e : out.to_events()) {
    bool found = false;
    for (const auto& orig : in_events) {
      if (orig == e) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_LE(out.total_spikes(), in.total_spikes());
}

TEST(Deletion, ZeroAndOneAreExact) {
  snn::SpikeRaster in = full_raster(10, 10);
  Rng rng(5);
  EXPECT_EQ(DeletionNoise(0.0).apply(in, rng).total_spikes(), 100u);
  EXPECT_EQ(DeletionNoise(1.0).apply(in, rng).total_spikes(), 0u);
}

TEST(Deletion, RejectsInvalidP) {
  EXPECT_THROW(DeletionNoise(-0.1), InvalidArgument);
  EXPECT_THROW(DeletionNoise(1.1), InvalidArgument);
}

TEST(Deletion, NameDescribesP) {
  EXPECT_EQ(DeletionNoise(0.5).name(), "deletion(p=0.50)");
}

TEST(Jitter, PreservesSpikeCountExactly) {
  const JitterNoise noise(2.5);
  const snn::SpikeRaster in = full_raster(20, 30);
  Rng rng(11);
  const snn::SpikeRaster out = noise.apply(in, rng);
  EXPECT_EQ(out.total_spikes(), in.total_spikes());
}

TEST(Jitter, PreservesPerNeuronCounts) {
  const JitterNoise noise(1.5);
  snn::SpikeRaster in(5, 20);
  in.add(3, 2);
  in.add(8, 2);
  in.add(10, 4);
  Rng rng(13);
  const snn::SpikeRaster out = noise.apply(in, rng);
  EXPECT_EQ(out.spikes_of(2), 2u);
  EXPECT_EQ(out.spikes_of(4), 1u);
  EXPECT_EQ(out.spikes_of(0), 0u);
}

TEST(Jitter, ShiftMagnitudesFollowSigma) {
  const double sigma = 1.0;
  const JitterNoise noise(sigma);
  snn::SpikeRaster in(1, 200);
  in.add(100, 0);  // far from the boundary so clamping is negligible
  Rng rng(17);
  double sum_sq = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const snn::SpikeRaster out = noise.apply(in, rng);
    const std::int32_t t = out.first_spike_time(0);
    const double d = static_cast<double>(t) - 100.0;
    sum_sq += d * d;
  }
  // Quantized Gaussian variance ~ sigma^2 + 1/12 (rounding).
  EXPECT_NEAR(std::sqrt(sum_sq / trials), std::sqrt(sigma * sigma + 1.0 / 12.0), 0.1);
}

TEST(Jitter, ClampsIntoWindow) {
  const JitterNoise noise(50.0);  // extreme jitter
  snn::SpikeRaster in(1, 10);
  in.add(0, 0);
  in.add(9, 0);
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const snn::SpikeRaster out = noise.apply(in, rng);
    EXPECT_EQ(out.total_spikes(), 2u);  // nothing fell off the window
  }
}

TEST(Jitter, ClampPilesMassAtWindowEdges) {
  // With sigma >> window, almost every shift clamps: the distribution must
  // collapse onto the boundary steps t=0 and t=T-1 (spikes never leave the
  // window, they pile up at its edges).
  const JitterNoise noise(200.0);
  const std::size_t window = 12;
  snn::SpikeRaster in(1, window);
  in.add(6, 0);  // start mid-window
  Rng rng(29);
  std::size_t at_zero = 0;
  std::size_t at_last = 0;
  std::size_t elsewhere = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const snn::SpikeRaster out = noise.apply(in, rng);
    ASSERT_EQ(out.total_spikes(), 1u);
    const std::int32_t t = out.first_spike_time(0);
    if (t == 0) {
      ++at_zero;
    } else if (t == static_cast<std::int32_t>(window) - 1) {
      ++at_last;
    } else {
      ++elsewhere;
    }
  }
  // sigma=200 over a 12-step window: > 95% of shifts clamp, split evenly.
  EXPECT_NEAR(static_cast<double>(at_zero) / trials, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(at_last) / trials, 0.5, 0.05);
  EXPECT_LT(static_cast<double>(elsewhere) / trials, 0.05);
}

TEST(Deletion, PZeroIsExactIdentityAndDrawsNothing) {
  const DeletionNoise noise(0.0);
  snn::SpikeRaster in(4, 10);
  in.add(2, 1);
  in.add(2, 3);
  in.add(7, 0);
  Rng rng(31);
  // Events (including within-step order) are untouched...
  EXPECT_EQ(noise.apply(in, rng).to_events(), in.to_events());
  // ...and the rng was never consumed: the next draw matches a fresh rng.
  Rng fresh(31);
  EXPECT_EQ(rng(), fresh());
}

TEST(Deletion, POneDeletesEverySpike) {
  const DeletionNoise noise(1.0);
  const snn::SpikeRaster in = full_raster(6, 9);
  Rng rng(37);
  const snn::SpikeRaster out = noise.apply(in, rng);
  EXPECT_EQ(out.total_spikes(), 0u);
  EXPECT_EQ(out.num_neurons(), in.num_neurons());
  EXPECT_EQ(out.window(), in.window());
}

TEST(Jitter, ZeroSigmaIsIdentity) {
  snn::SpikeRaster in(2, 5);
  in.add(3, 1);
  Rng rng(23);
  const snn::SpikeRaster out = JitterNoise(0.0).apply(in, rng);
  EXPECT_EQ(out.to_events(), in.to_events());
}

TEST(Jitter, RejectsNegativeSigma) {
  EXPECT_THROW(JitterNoise(-1.0), InvalidArgument);
}

TEST(Composite, AppliesInOrder) {
  std::vector<snn::NoiseModelPtr> models;
  models.push_back(make_deletion(0.5));
  models.push_back(make_jitter(1.0));
  const CompositeNoise composite(std::move(models));
  const snn::SpikeRaster in = full_raster(20, 20);
  Rng rng(29);
  const snn::SpikeRaster out = composite.apply(in, rng);
  EXPECT_LT(out.total_spikes(), in.total_spikes());
  EXPECT_NEAR(static_cast<double>(out.total_spikes()), 200.0, 60.0);
  EXPECT_NE(composite.name().find("deletion"), std::string::npos);
  EXPECT_NE(composite.name().find("jitter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CompositeNoise ordering contract (see the class comment in noise/noise.h):
// member order is significant, and the raster and in-place paths must agree
// for stacks of any depth.

snn::NoiseModelPtr make_composite(
    std::vector<snn::NoiseModelPtr> models) {
  return std::make_unique<CompositeNoise>(std::move(models));
}

TEST(CompositeOrdering, DeletionThenJitterDiffersFromJitterThenDeletion) {
  const snn::SpikeRaster in = full_raster(12, 24);

  std::vector<snn::NoiseModelPtr> dj;
  dj.push_back(make_deletion(0.5));
  dj.push_back(make_jitter(2.0));
  std::vector<snn::NoiseModelPtr> jd;
  jd.push_back(make_jitter(2.0));
  jd.push_back(make_deletion(0.5));
  const CompositeNoise del_jit(std::move(dj));
  const CompositeNoise jit_del(std::move(jd));

  Rng rng_a(71);
  Rng rng_b(71);
  const auto a = del_jit.apply(in, rng_a).to_events();
  const auto b = jit_del.apply(in, rng_b).to_events();
  // Same seed, same members, opposite order: the corrupted trains differ --
  // the first stage changes both which events reach the second stage and
  // what the second stage draws from the shared rng.
  EXPECT_NE(a, b);
  // name() reports members in application order.
  const std::string dj_name = del_jit.name();
  const std::string jd_name = jit_del.name();
  EXPECT_LT(dj_name.find("deletion"), dj_name.find("jitter"));
  EXPECT_LT(jd_name.find("jitter"), jd_name.find("deletion"));
}

/// Applies `noise` to the same input via the raster path and the in-place
/// event-buffer path with identical seeds; both must produce the same train.
void expect_inplace_matches_raster(const snn::NoiseModel& noise,
                                   std::uint64_t seed) {
  const snn::SpikeRaster in = full_raster(10, 18);
  Rng rng_raster(seed);
  const snn::SpikeRaster via_raster = noise.apply(in, rng_raster);

  snn::EventBuffer buf;
  snn::EventSortScratch scratch;
  buf.assign_from(in, scratch);
  Rng rng_events(seed);
  noise.apply_inplace(buf, scratch, rng_events);
  EXPECT_EQ(buf.to_raster().to_events(), via_raster.to_events())
      << noise.name() << " seed " << seed;
}

TEST(CompositeOrdering, InplaceMatchesRasterForDepth3Stacks) {
  for (const std::uint64_t seed : {7ull, 1234ull, 0xC0FFEEull}) {
    std::vector<snn::NoiseModelPtr> stack3;
    stack3.push_back(make_deletion(0.3));
    stack3.push_back(make_jitter(1.5));
    stack3.push_back(make_deletion(0.2));
    expect_inplace_matches_raster(*make_composite(std::move(stack3)), seed);

    std::vector<snn::NoiseModelPtr> stack4;
    stack4.push_back(make_jitter(1.0));
    stack4.push_back(make_deletion(0.4));
    stack4.push_back(make_jitter(0.5));
    stack4.push_back(make_deletion(0.1));
    expect_inplace_matches_raster(*make_composite(std::move(stack4)), seed);
  }
}

TEST(CompositeOrdering, NestedCompositeMatchesFlatStack) {
  // composite[a + composite[b + c]] == composite[a + b + c]: composition is
  // associative because each member only sees the previous output and the
  // shared rng.
  const snn::SpikeRaster in = full_raster(8, 16);
  std::vector<snn::NoiseModelPtr> inner;
  inner.push_back(make_jitter(1.2));
  inner.push_back(make_deletion(0.25));
  std::vector<snn::NoiseModelPtr> nested;
  nested.push_back(make_deletion(0.3));
  nested.push_back(make_composite(std::move(inner)));
  std::vector<snn::NoiseModelPtr> flat;
  flat.push_back(make_deletion(0.3));
  flat.push_back(make_jitter(1.2));
  flat.push_back(make_deletion(0.25));

  Rng rng_a(99);
  Rng rng_b(99);
  EXPECT_EQ(make_composite(std::move(nested))->apply(in, rng_a).to_events(),
            make_composite(std::move(flat))->apply(in, rng_b).to_events());
}

TEST(Composite, FactoryHelper) {
  const auto n = make_deletion_jitter(0.2, 0.5);
  snn::SpikeRaster in = full_raster(5, 5);
  Rng rng(31);
  EXPECT_LE(n->apply(in, rng).total_spikes(), 25u);
}

TEST(NoNoise, IsIdentity) {
  const NoNoise n;
  snn::SpikeRaster in(2, 4);
  in.add(1, 0);
  Rng rng(37);
  EXPECT_EQ(n.apply(in, rng).to_events(), in.to_events());
  EXPECT_EQ(n.name(), "clean");
}

TEST(Noise, DeterministicGivenSeed) {
  const DeletionNoise noise(0.5);
  const snn::SpikeRaster in = full_raster(10, 10);
  Rng rng1(41);
  Rng rng2(41);
  EXPECT_EQ(noise.apply(in, rng1).to_events(), noise.apply(in, rng2).to_events());
}

TEST(DeviceProfile, CatalogIsOrderedByHarshness) {
  const auto& catalog = device_catalog();
  ASSERT_GE(catalog.size(), 3u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_GE(catalog[i].deletion_p, catalog[i - 1].deletion_p);
    EXPECT_GE(catalog[i].jitter_sigma, catalog[i - 1].jitter_sigma);
  }
}

TEST(DeviceProfile, FindAndMaterialize) {
  const DeviceProfile& d = find_device("memristive-early");
  EXPECT_GT(d.deletion_p, 0.0);
  const auto noise = d.make_noise();
  snn::SpikeRaster in = full_raster(10, 10);
  Rng rng(43);
  EXPECT_LT(noise->apply(in, rng).total_spikes(), 100u);
  EXPECT_THROW(find_device("no-such-device"), InvalidArgument);
}

TEST(DeviceProfile, CleanDeviceIsIdentity) {
  const DeviceProfile& d = find_device("digital-cmos");
  const auto noise = d.make_noise();
  snn::SpikeRaster in = full_raster(4, 4);
  Rng rng(47);
  EXPECT_EQ(noise->apply(in, rng).total_spikes(), 16u);
}

}  // namespace
}  // namespace tsnn::noise
