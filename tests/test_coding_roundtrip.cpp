// Property tests shared by all coding schemes: encode -> decode round
// trips, zero/saturation behavior, and spike-count ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/registry.h"
#include "common/rng.h"
#include "core/ttas.h"

namespace tsnn {
namespace {

using snn::Coding;
using snn::CodingParams;
using snn::CodingScheme;

struct RoundTripCase {
  Coding coding;
  std::size_t burst_duration;
  double tolerance;  ///< max |decode(encode(a)) - a| over a in [0,1]
};

class CodingRoundTrip : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  snn::CodingSchemePtr make() const {
    CodingParams params = coding::default_params(GetParam().coding);
    params.burst_duration = GetParam().burst_duration;
    return coding::make_scheme(GetParam().coding, params);
  }
};

TEST_P(CodingRoundTrip, RecoversActivationsWithinTolerance) {
  const auto scheme = make();
  const std::size_t n = 64;
  Tensor a{Shape{n}};
  Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(rng.uniform(0.05, 0.95));
  }
  const snn::SpikeRaster raster = scheme->encode(a);
  const Tensor decoded = scheme->decode(raster);
  ASSERT_EQ(decoded.numel(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(decoded[i], a[i], GetParam().tolerance)
        << scheme->name() << " activation " << a[i];
  }
}

TEST_P(CodingRoundTrip, ZeroActivationsProduceNoSpikes) {
  const auto scheme = make();
  Tensor a{Shape{8}};
  const snn::SpikeRaster raster = scheme->encode(a);
  EXPECT_EQ(raster.total_spikes(), 0u);
  const Tensor decoded = scheme->decode(raster);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(decoded[i], 0.0f);
  }
}

TEST_P(CodingRoundTrip, DecodeIsMonotoneInActivation) {
  const auto scheme = make();
  Tensor a{Shape{9}};
  for (std::size_t i = 0; i < 9; ++i) {
    a[i] = 0.1f + 0.1f * static_cast<float>(i);
  }
  const Tensor decoded = scheme->decode(scheme->encode(a));
  for (std::size_t i = 1; i < 9; ++i) {
    EXPECT_GE(decoded[i], decoded[i - 1] - 1e-4f) << scheme->name();
  }
}

TEST_P(CodingRoundTrip, EncodeDeterministic) {
  const auto scheme = make();
  Tensor a{Shape{16}};
  Rng rng(7);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<float>(rng.uniform());
  }
  EXPECT_EQ(scheme->encode(a).to_events(), scheme->encode(a).to_events());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodings, CodingRoundTrip,
    ::testing::Values(RoundTripCase{Coding::kRate, 1, 0.02},
                      RoundTripCase{Coding::kPhase, 1, 0.01},
                      RoundTripCase{Coding::kBurst, 1, 0.05},
                      // TTFS-family quantization is one kernel step:
                      // max relative error ~ e^(1/(2*tau)) - 1 with tau = 3.
                      RoundTripCase{Coding::kTtfs, 1, 0.20},
                      RoundTripCase{Coding::kTtas, 3, 0.20},
                      RoundTripCase{Coding::kTtas, 5, 0.20}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return snn::coding_name(info.param.coding) + "_" +
             std::to_string(info.param.burst_duration);
    });

TEST(CodingSpikeCounts, TtfsUsesFewestSpikes) {
  Tensor a{Shape{32}};
  Rng rng(9);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = static_cast<float>(rng.uniform(0.2, 0.9));
  }
  const std::size_t rate_spikes =
      coding::make_scheme(Coding::kRate)->encode(a).total_spikes();
  const std::size_t phase_spikes =
      coding::make_scheme(Coding::kPhase)->encode(a).total_spikes();
  const std::size_t burst_spikes =
      coding::make_scheme(Coding::kBurst)->encode(a).total_spikes();
  const std::size_t ttfs_spikes =
      coding::make_scheme(Coding::kTtfs)->encode(a).total_spikes();
  EXPECT_LT(ttfs_spikes, burst_spikes);
  EXPECT_LT(ttfs_spikes, phase_spikes);
  EXPECT_LT(ttfs_spikes, rate_spikes);
  EXPECT_LE(burst_spikes, rate_spikes);  // burst compresses high rates
  EXPECT_EQ(ttfs_spikes, 32u);           // exactly one spike per neuron
}

TEST(CodingSpikeCounts, TtasSpikesScaleWithBurstDuration) {
  Tensor a{Shape{16}};
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = 0.5f;
  }
  const std::size_t s1 = core::make_ttas(1)->encode(a).total_spikes();
  const std::size_t s3 = core::make_ttas(3)->encode(a).total_spikes();
  const std::size_t s5 = core::make_ttas(5)->encode(a).total_spikes();
  EXPECT_EQ(s1, 16u);
  EXPECT_EQ(s3, 48u);
  EXPECT_EQ(s5, 80u);
}

TEST(CodingNames, MatchPaperLegend) {
  EXPECT_EQ(coding::make_scheme(Coding::kRate)->name(), "rate");
  EXPECT_EQ(coding::make_scheme(Coding::kPhase)->name(), "phase");
  EXPECT_EQ(coding::make_scheme(Coding::kBurst)->name(), "burst");
  EXPECT_EQ(coding::make_scheme(Coding::kTtfs)->name(), "ttfs");
  EXPECT_EQ(core::make_ttas(5)->name(), "ttas(5)");
}

TEST(CodingDefaults, MatchPaperThresholds) {
  EXPECT_FLOAT_EQ(coding::default_params(Coding::kRate).threshold, 0.4f);
  EXPECT_FLOAT_EQ(coding::default_params(Coding::kBurst).threshold, 0.4f);
  EXPECT_FLOAT_EQ(coding::default_params(Coding::kPhase).threshold, 1.2f);
  EXPECT_FLOAT_EQ(coding::default_params(Coding::kTtfs).threshold, 0.8f);
  EXPECT_FLOAT_EQ(coding::default_params(Coding::kTtas).threshold, 0.8f);
}

}  // namespace
}  // namespace tsnn
