// Tests for the common/thread_pool worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"

namespace tsnn {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(8), 8u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);  // hardware concurrency
}

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // The queue is FIFO; with one worker execution order == submission order.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { ++counter; });
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool is usable again afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ExceptionDoesNotStallRemainingTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter, i] {
      if (i == 3) {
        throw std::runtime_error("task 3 failed");
      }
      ++counter;
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 19);  // every non-throwing task still ran
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::invalid_argument("index 7");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleWorkerRunsInIndexOrder) {
  // The broadcast hands indices out from one atomic counter; with a single
  // worker that degenerates to exactly 0..n-1 -- the property the sweep
  // engine's serial/parallel equivalence leans on.
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  const std::function<void(std::size_t)> fn = [&order](std::size_t i) {
    order.push_back(i);
  };
  pool.parallel_for(64, fn);
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPool, ParallelForIsReusableBackToBack) {
  // Consecutive broadcasts over one pool -- the sweep engine's steady state.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> fn = [&counter](std::size_t) {
    ++counter;
  };
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(37, fn);
  }
  EXPECT_EQ(counter.load(), 370);
}

TEST(ThreadPool, ParallelForAsyncCompletesOnWait) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  const std::function<void(std::size_t)> fn = [&hits](std::size_t i) {
    ++hits[i];
  };
  pool.parallel_for_async(hits.size(), fn);
  pool.wait();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForAsyncLetsCallerConsumeIncrementally) {
  // The caller observes completions while the broadcast is still running --
  // the streaming pattern of the sweep engine's row emitter.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  const std::function<void(std::size_t)> fn = [&completed](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++completed;
  };
  pool.parallel_for_async(20, fn);
  while (completed.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.wait();
  EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadPool, ParallelForRunsEveryIndexDespiteException) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> fn = [&counter](std::size_t i) {
    if (i == 5) {
      throw std::runtime_error("index 5");
    }
    ++counter;
  };
  EXPECT_THROW(pool.parallel_for(40, fn), std::runtime_error);
  EXPECT_EQ(counter.load(), 39);
}

// ---------------------------------------------------------------------------
// Misuse guards: the contract violations that would otherwise deadlock
// (nesting a broadcast inside a worker of the same pool, starting a second
// broadcast while the first still borrows its callable) abort with a
// diagnostic instead of hanging. Death tests fork, so the "threadsafe"
// style is required with live pool threads.

void nested_parallel_for_from_worker() {
  ThreadPool pool(2);
  const std::function<void(std::size_t)> inner = [](std::size_t) {};
  const std::function<void(std::size_t)> outer = [&](std::size_t) {
    pool.parallel_for(4, inner);
  };
  pool.parallel_for(4, outer);
}

void wait_from_worker() {
  ThreadPool pool(2);
  pool.submit([&pool] { pool.wait(); });
  pool.wait();
}

void double_parallel_for_async() {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  const std::function<void(std::size_t)> slow = [&](std::size_t) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  pool.parallel_for_async(64, slow);
  const std::function<void(std::size_t)> second = [](std::size_t) {};
  pool.parallel_for_async(1, second);  // must abort, not block or deadlock
}

TEST(ThreadPoolDeath, NestedParallelForFromWorkerAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(nested_parallel_for_from_worker(), "nested inside a worker");
}

TEST(ThreadPoolDeath, WaitFromWorkerAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(wait_from_worker(), "called from inside a worker");
}

TEST(ThreadPoolDeath, SecondBroadcastWithoutWaitAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(double_parallel_for_async(),
               "previous broadcast is still in flight");
}

TEST(ThreadPool, CrossPoolNestingRemainsLegal) {
  // Only same-pool nesting is fatal: a worker of pool A may drive pool B.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> leaf = [&counter](std::size_t) {
    ++counter;
  };
  outer.submit([&inner, &leaf] { inner.parallel_for(8, leaf); });
  outer.wait();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
    // No wait(): destruction must still run everything before joining.
  }
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, DestructorDrainsInFlightBroadcast) {
  // Destruction-while-work-pending is a graceful drain, not a cancel --
  // the contract InferenceServer::shutdown leans on. The callable and the
  // result slots outlive the pool (declared first), as the async-broadcast
  // contract requires.
  std::vector<std::atomic<int>> hits(64);
  const std::function<void(std::size_t)> fn = [&hits](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++hits[i];
  };
  {
    ThreadPool pool(3);
    pool.parallel_for_async(hits.size(), fn);
    // No wait(): the destructor is the drain.
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

void destroy_pool_from_own_worker() {
  auto* pool = new ThreadPool(2);
  pool->submit([pool] { delete pool; });
  // The worker aborts with a diagnostic before this sleep runs out.
  std::this_thread::sleep_for(std::chrono::seconds(30));
}

TEST(ThreadPoolDeath, DestroyFromOwnWorkerAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(destroy_pool_from_own_worker(),
               "destroyed from inside one of its own workers");
}

}  // namespace
}  // namespace tsnn
