// TSNZ artifact cache torture tests: truncation at every prefix, bit flips
// at every byte, and the zoo's fall-back-and-repair behavior on corrupt or
// stale cache entries. The loader contract under test: every corruption
// mode surfaces as tsnn::IoError -- never a crash, never UB (the suite runs
// under ASan/UBSan in CI) -- and core::get_or_convert treats any unreadable
// artifact as a miss, reconverts, and leaves a repaired cache behind.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/zoo.h"
#include "dnn/serialize.h"
#include "snn/snn_model.h"
#include "snn/topology.h"

namespace tsnn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Tensor filled_tensor(Shape shape, std::uint64_t seed) {
  Tensor t{std::move(shape)};
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return t;
}

/// Small artifact covering every stage kind (incl. a 1x1 conv), built
/// directly -- no training -- so the torture loops stay fast.
dnn::SnnArtifact make_tiny_artifact() {
  dnn::SnnArtifact a;
  a.key = "tsnz1|torture|fixture";
  a.dnn_accuracy = 0.5;
  a.model = snn::SnnModel(Shape{1, 4, 4});
  a.model.add_stage("conv", std::make_unique<snn::ConvTopology>(
                                filled_tensor(Shape{2, 1, 3, 3}, 7), 4, 4, 1, 1));
  a.model.add_stage("pool",
                    std::make_unique<snn::PoolTopology>(2, 4, 4, 2));
  a.model.add_stage("conv1x1",
                    std::make_unique<snn::ConvTopology>(
                        filled_tensor(Shape{2, 2, 1, 1}, 8), 2, 2, 1, 0));
  a.model.add_stage("fc", std::make_unique<snn::DenseTopology>(
                              filled_tensor(Shape{3, 8}, 9)));
  a.scales = {{"conv", 1.0, 2.0}, {"pool", 2.0, 2.0}, {"conv1x1", 2.0, 1.5},
              {"fc", 1.5, 1.0}};
  return a;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class ZooCacheTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("tsnz_torture.tsnz");
    dnn::save_snn_artifact(make_tiny_artifact(), path_);
    bytes_ = read_bytes(path_);
    ASSERT_GT(bytes_.size(), 32u);  // magic + version + size + checksum + key
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<unsigned char> bytes_;
};

TEST_F(ZooCacheTortureTest, IntactFileLoads) {
  EXPECT_NO_THROW(dnn::load_snn_artifact(path_));
}

TEST_F(ZooCacheTortureTest, TruncationAtEveryPrefixThrowsIoError) {
  // Every proper prefix -- which by construction includes every section
  // boundary (header fields, key, scale table, stage table, each aligned
  // payload block) -- must be rejected cleanly.
  const std::string cut = temp_path("tsnz_torture_cut.tsnz");
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    write_bytes(cut, std::vector<unsigned char>(bytes_.begin(),
                                                bytes_.begin() +
                                                    static_cast<std::ptrdiff_t>(
                                                        len)));
    EXPECT_THROW(dnn::load_snn_artifact(cut), IoError) << "prefix " << len;
  }
  std::remove(cut.c_str());
}

TEST_F(ZooCacheTortureTest, FlippingAnyByteThrowsIoError) {
  // The whole-file checksum (and for the header, the field validations in
  // front of it) must catch a flip at any offset -- header, body, payload.
  const std::string flip = temp_path("tsnz_torture_flip.tsnz");
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::vector<unsigned char> mutated = bytes_;
    mutated[i] ^= 0xFF;
    write_bytes(flip, mutated);
    EXPECT_THROW(dnn::load_snn_artifact(flip), IoError) << "byte " << i;
  }
  std::remove(flip.c_str());
}

TEST_F(ZooCacheTortureTest, TrailingGarbageThrowsIoError) {
  std::vector<unsigned char> grown = bytes_;
  grown.insert(grown.end(), {0xDE, 0xAD, 0xBE, 0xEF});
  const std::string big = temp_path("tsnz_torture_grown.tsnz");
  write_bytes(big, grown);
  EXPECT_THROW(dnn::load_snn_artifact(big), IoError);
  std::remove(big.c_str());
}

TEST_F(ZooCacheTortureTest, NoMmapFallbackRejectsCorruptionToo) {
  dnn::ArtifactLoadOptions no_mmap;
  no_mmap.use_mmap = false;
  std::vector<unsigned char> mutated = bytes_;
  mutated[bytes_.size() / 2] ^= 0xFF;
  const std::string flip = temp_path("tsnz_torture_nommap.tsnz");
  write_bytes(flip, mutated);
  EXPECT_THROW(dnn::load_snn_artifact(flip, no_mmap), IoError);
  write_bytes(flip, std::vector<unsigned char>(bytes_.begin(),
                                               bytes_.begin() + 40));
  EXPECT_THROW(dnn::load_snn_artifact(flip, no_mmap), IoError);
  std::remove(flip.c_str());
}

// -------------------------------------------------- zoo fall-back path -----

class ZooRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "tsnn_zoo_cache_test")
               .string();
    std::filesystem::remove_all(dir_);
    setenv("TSNN_ZOO_DIR", dir_.c_str(), 1);
    setenv("TSNN_FAST", "1", 1);
  }
  void TearDown() override {
    unsetenv("TSNN_ZOO_DIR");
    unsetenv("TSNN_FAST");
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(ZooRepairTest, CorruptArtifactFallsBackAndRepairsCache) {
  const core::DatasetKind kind = core::DatasetKind::kMnistLike;
  const data::DatasetPair data = core::make_dataset(kind);

  // Populate the cache once (trains the fast-mode model, converts, writes
  // the artifact), then corrupt the artifact in place.
  const core::ConvertedModel first = core::get_or_convert(kind, data);
  EXPECT_FALSE(first.loaded_from_cache);
  const std::string path = core::zoo_artifact_path(kind);
  ASSERT_TRUE(dnn::is_saved_artifact(path));
  std::vector<unsigned char> bytes = read_bytes(path);
  bytes[bytes.size() - 1] ^= 0xFF;
  write_bytes(path, bytes);
  EXPECT_THROW(dnn::load_snn_artifact(path), IoError);

  // The zoo must treat the corrupt entry as a miss (the trained DNN cache
  // is intact, so this reconverts without retraining), serve a fresh
  // conversion, and leave a repaired artifact behind.
  const core::ConvertedModel second = core::get_or_convert(kind, data);
  EXPECT_FALSE(second.loaded_from_cache);
  EXPECT_DOUBLE_EQ(second.dnn_test_accuracy, first.dnn_test_accuracy);
  EXPECT_NO_THROW(dnn::load_snn_artifact(path));

  // And the repaired cache serves hits again.
  const core::ConvertedModel third = core::get_or_convert(kind, data);
  EXPECT_TRUE(third.loaded_from_cache);
  EXPECT_DOUBLE_EQ(third.dnn_test_accuracy, first.dnn_test_accuracy);
}

TEST_F(ZooRepairTest, StaleKeyFallsBackAndRepairs) {
  const core::DatasetKind kind = core::DatasetKind::kMnistLike;
  const data::DatasetPair data = core::make_dataset(kind);
  const std::string path = core::zoo_artifact_path(kind);

  // Plant a structurally valid artifact whose key does not match the
  // current config (a renamed file or a hash collision): the zoo must
  // ignore it and repair with the real conversion.
  std::filesystem::create_directories(dir_);
  dnn::SnnArtifact stale = make_tiny_artifact();
  stale.key = "tsnz1|stale|other-config";
  dnn::save_snn_artifact(stale, path);

  const core::ConvertedModel out = core::get_or_convert(kind, data);
  EXPECT_FALSE(out.loaded_from_cache);
  const dnn::SnnArtifact repaired = dnn::load_snn_artifact(path);
  EXPECT_EQ(repaired.key, core::zoo_artifact_key(kind));
  EXPECT_EQ(repaired.model.num_stages(), out.conversion.model.num_stages());
}

}  // namespace
}  // namespace tsnn
