// Tests for core::InferenceServer -- the admission-queued micro-batching
// execution service. The headline pin: a replayed request trace is
// bit-identical per request across every (max_batch, threads, deadline)
// serving configuration, because a request's result is a pure function of
// the request itself (snn::ClassifyRequest's (seed, stream) identity).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "coding/registry.h"
#include "common/error.h"
#include "core/serve.h"
#include "core/ttas.h"
#include "noise/noise.h"
#include "snn/simulator.h"
#include "snn/topology.h"

namespace tsnn::core {
namespace {

snn::SnnModel test_model() {
  snn::SnnModel model(Shape{1, 8, 8});
  Tensor conv_w{Shape{4, 1, 3, 3}};
  for (std::size_t i = 0; i < conv_w.numel(); ++i) {
    conv_w[i] = 0.05f * static_cast<float>((i * 17) % 13) - 0.25f;
  }
  model.add_stage("conv",
                  std::make_unique<snn::ConvTopology>(conv_w, 8, 8,
                                                      /*stride=*/1,
                                                      /*pad=*/1));
  model.add_stage("pool", std::make_unique<snn::PoolTopology>(4, 8, 8, 2));
  Tensor dense_w{Shape{5, 64}};
  for (std::size_t i = 0; i < dense_w.numel(); ++i) {
    dense_w[i] = 0.03f * static_cast<float>((i * 7) % 17) - 0.2f;
  }
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(dense_w));
  return model;
}

std::vector<Tensor> test_images(std::size_t n) {
  std::vector<Tensor> images;
  for (std::size_t k = 0; k < n; ++k) {
    Tensor img{Shape{1, 8, 8}};
    for (std::size_t i = 0; i < img.numel(); ++i) {
      img[i] = static_cast<float>((i * 31 + k * 7) % 64) / 64.0f;
    }
    images.push_back(std::move(img));
  }
  return images;
}

/// The trace both the replay test and the direct-execution test use: a mix
/// of codings, images, noise, and per-request seeds.
struct Trace {
  snn::SnnModel model = test_model();
  std::vector<Tensor> images = test_images(6);
  snn::CodingSchemePtr rate = coding::make_scheme(snn::Coding::kRate);
  snn::CodingSchemePtr ttas = make_ttas(5);
  snn::NoiseModelPtr noise = noise::make_deletion_jitter(0.3, 1.0);

  std::vector<snn::ClassifyRequest> requests;

  explicit Trace(std::size_t n = 24) {
    for (std::size_t i = 0; i < n; ++i) {
      snn::ClassifyRequest req;
      req.sim.model = &model;
      req.sim.scheme = i % 2 == 0 ? rate.get() : ttas.get();
      req.sim.noise = i % 3 == 0 ? nullptr : noise.get();
      req.image = &images[i % images.size()];
      req.seed = 0x5EED + i * 13;
      req.stream = i % 5;
      requests.push_back(req);
    }
  }
};

/// Runs the whole trace through a server with the given configuration and
/// returns the owned per-request results, indexed by request id.
std::vector<snn::SimResult> run_trace(const Trace& trace,
                                      const ServeOptions& options) {
  InferenceServer server(options);
  std::vector<std::future<InferenceServer::OwnedResponse>> futures;
  futures.reserve(trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    futures.push_back(server.submit_future(i, trace.requests[i]));
  }
  std::vector<snn::SimResult> results(trace.requests.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    InferenceServer::OwnedResponse resp = futures[i].get();
    EXPECT_EQ(resp.id, i);
    results[resp.id] = std::move(resp.result);
  }
  return results;
}

void expect_bit_identical(const snn::SimResult& a, const snn::SimResult& b,
                          std::size_t id) {
  EXPECT_EQ(a.predicted_class, b.predicted_class) << "request " << id;
  EXPECT_EQ(a.total_spikes, b.total_spikes) << "request " << id;
  EXPECT_EQ(a.decision_timestep, b.decision_timestep) << "request " << id;
  ASSERT_EQ(a.logits.numel(), b.logits.numel()) << "request " << id;
  // Bitwise, not approximate: the serving configuration must not perturb a
  // single mantissa bit.
  EXPECT_EQ(std::memcmp(a.logits.data(), b.logits.data(),
                        a.logits.numel() * sizeof(float)),
            0)
      << "request " << id;
}

TEST(InferenceServer, MatchesDirectExecution) {
  // The server is a scheduler, not a math path: results must equal running
  // execute_request() inline on the calling thread.
  const Trace trace(12);
  ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 4;
  const std::vector<snn::SimResult> served = run_trace(trace, options);

  snn::SimWorkspace ws;
  snn::SimResult direct;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    snn::execute_request(trace.requests[i], ws, direct);
    expect_bit_identical(direct, served[i], i);
  }
}

TEST(InferenceServer, TraceReplayBitIdenticalAcrossConfigurations) {
  // The acceptance pin: batch {1,4,16} x threads {1,8} x deadline {0,2ms}
  // all reproduce the same per-request bits, regardless of how requests
  // interleave into micro-batches.
  const Trace trace(24);
  ServeOptions baseline;
  baseline.num_threads = 1;
  baseline.max_batch = 1;
  const std::vector<snn::SimResult> reference = run_trace(trace, baseline);

  struct Config {
    std::size_t threads;
    std::size_t batch;
    long long deadline_us;
  };
  const Config configs[] = {
      {1, 4, 0}, {8, 1, 0}, {8, 4, 0}, {8, 16, 2000}, {2, 16, 0},
  };
  for (const Config& c : configs) {
    ServeOptions options;
    options.num_threads = c.threads;
    options.max_batch = c.batch;
    options.batch_deadline = std::chrono::microseconds(c.deadline_us);
    const std::vector<snn::SimResult> replay = run_trace(trace, options);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      expect_bit_identical(reference[i], replay[i], i);
    }
  }
}

/// Sink that blocks inside on_complete until released -- wedges a worker
/// so tests can pin queued-but-unstarted states deterministically.
class GateSink : public InferenceServer::CompletionSink {
 public:
  void on_complete(const InferenceServer::Response& resp) override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    if (resp.cancelled) {
      ++cancelled_;
    } else if (resp.error) {
      ++errored_;
    } else {
      ++executed_;
    }
    entered_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
  }

  void await_entered(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

  std::size_t executed() {
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
  }
  std::size_t cancelled() {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  std::size_t entered_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t errored_ = 0;
  bool released_ = false;
};

/// Non-blocking tally sink for requests whose completion must not wedge
/// the caller (e.g. the shutdown(kDiscard) cancel loop, which runs sinks
/// on the shutting-down thread).
class CountingSink : public InferenceServer::CompletionSink {
 public:
  void on_complete(const InferenceServer::Response& resp) override {
    if (resp.cancelled) {
      ++cancelled_;
    } else {
      ++executed_;
    }
  }

  std::size_t executed() const { return executed_.load(); }
  std::size_t cancelled() const { return cancelled_.load(); }

 private:
  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> cancelled_{0};
};

TEST(InferenceServer, TrySubmitReportsFullUnderBackpressure) {
  const Trace trace(1);
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.queue_capacity = 1;
  InferenceServer server(options);
  GateSink gate;

  InferenceServer::Request req;
  req.work = trace.requests[0];
  req.sink = &gate;

  // Request 0 wedges the single worker inside its sink...
  req.id = 0;
  ASSERT_TRUE(server.submit(req));
  gate.await_entered(1);
  // ...request 1 fills the capacity-1 queue...
  req.id = 1;
  ASSERT_TRUE(server.submit(req));
  // ...so admission is saturated: try_submit must report kFull, not block.
  req.id = 2;
  using Push = RequestQueue<InferenceServer::Request>::PushStatus;
  EXPECT_EQ(server.try_submit(req), Push::kFull);

  gate.release();
  server.drain();
  EXPECT_EQ(gate.executed(), 2u);  // the kFull request was never admitted
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(InferenceServer, ShutdownExecuteDrainsQueued) {
  const Trace trace(1);
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  InferenceServer server(options);
  GateSink gate;

  InferenceServer::Request req;
  req.work = trace.requests[0];
  req.sink = &gate;
  for (std::uint64_t i = 0; i < 8; ++i) {
    req.id = i;
    ASSERT_TRUE(server.submit(req));
  }
  gate.await_entered(1);  // worker wedged on request 0; 7 queued
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
  });
  server.shutdown(InferenceServer::Drain::kExecute);
  releaser.join();
  EXPECT_EQ(gate.executed(), 8u);  // graceful: nothing dropped
  EXPECT_EQ(gate.cancelled(), 0u);
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
}

TEST(InferenceServer, ShutdownDiscardCancelsQueued) {
  const Trace trace(1);
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  InferenceServer server(options);
  GateSink gate;

  InferenceServer::Request req;
  req.work = trace.requests[0];
  req.sink = &gate;
  req.id = 0;
  ASSERT_TRUE(server.submit(req));
  gate.await_entered(1);  // the worker is wedged: nothing else can start
  // The queued requests use a non-blocking sink: the discard flush runs
  // sinks on this thread, and a wedge there would hand the worker a window
  // to race the flush for queued items once the gate opens.
  CountingSink queued;
  req.sink = &queued;
  for (std::uint64_t i = 1; i < 8; ++i) {
    req.id = i;
    ASSERT_TRUE(server.submit(req));
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
  });
  server.shutdown(InferenceServer::Drain::kDiscard);
  releaser.join();
  // Exactly the wedged request executed; the 7 queued ones completed as
  // cancelled -- every admitted request's sink was called exactly once.
  EXPECT_EQ(gate.executed(), 1u);
  EXPECT_EQ(gate.cancelled(), 0u);
  EXPECT_EQ(queued.executed(), 0u);
  EXPECT_EQ(queued.cancelled(), 7u);
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.cancelled, 7u);
}

TEST(InferenceServer, SubmitAfterShutdownIsRejected) {
  const Trace trace(1);
  ServeOptions options;
  options.num_threads = 1;
  InferenceServer server(options);
  server.shutdown();

  GateSink gate;
  InferenceServer::Request req;
  req.work = trace.requests[0];
  req.sink = &gate;
  EXPECT_FALSE(server.submit(req));
  using Push = RequestQueue<InferenceServer::Request>::PushStatus;
  EXPECT_EQ(server.try_submit(req), Push::kClosed);
  auto future = server.submit_future(1, trace.requests[0]);
  EXPECT_THROW(future.get(), std::runtime_error);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST(InferenceServer, ExecutionErrorReachesTheFuture) {
  const Trace trace(1);
  ServeOptions options;
  options.num_threads = 1;
  InferenceServer server(options);
  snn::ClassifyRequest bad = trace.requests[0];
  bad.image = nullptr;  // execute_request refuses imageless requests
  auto future = server.submit_future(7, bad);
  EXPECT_THROW(future.get(), Error);
  // The future resolves from the sink, which runs just before the counter
  // update; drain() is the barrier that orders the stats read after it.
  server.drain();
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(InferenceServer, BorrowedPoolIsReleasedUsable) {
  // A server on a borrowed pool occupies it for its lifetime; after
  // shutdown the pool must be fully usable for ordinary broadcasts again.
  const Trace trace(8);
  ThreadPool pool(2);
  {
    ServeOptions options;
    options.pool = &pool;
    options.max_batch = 2;
    InferenceServer server(options);
    std::vector<std::future<InferenceServer::OwnedResponse>> futures;
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
      futures.push_back(server.submit_future(i, trace.requests[i]));
    }
    for (auto& f : futures) {
      f.get();
    }
  }
  std::atomic<int> counter{0};
  const std::function<void(std::size_t)> fn = [&counter](std::size_t) {
    ++counter;
  };
  pool.parallel_for(16, fn);
  EXPECT_EQ(counter.load(), 16);
}

TEST(InferenceServer, StatsCountBatches) {
  const Trace trace(16);
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 4;
  // A wedged first request lets the remaining 15 queue up, so later pulls
  // actually form multi-request batches.
  InferenceServer server(options);
  GateSink gate;
  InferenceServer::Request req;
  req.sink = &gate;
  for (std::uint64_t i = 0; i < 16; ++i) {
    req.id = i;
    req.work = trace.requests[i];
    ASSERT_TRUE(server.submit(req));
  }
  gate.await_entered(1);
  gate.release();
  server.drain();
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.max_batch, 4u);
  EXPECT_GT(stats.max_batch, 1u);  // at least one true micro-batch formed
  EXPECT_GT(stats.max_queue_depth, 1u);
  EXPECT_GT(stats.mean_batch(), 1.0);
}

}  // namespace
}  // namespace tsnn::core
