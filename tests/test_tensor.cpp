// Tests for the tensor type and numeric kernels.
#include <gtest/gtest.h>

#include "common/error.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace tsnn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t{Shape{2, 3}};
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, FillConstructor) {
  Tensor t{Shape{4}, 2.5f};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(Tensor, AdoptValuesChecksCount) {
  EXPECT_NO_THROW((Tensor{Shape{2, 2}, {1, 2, 3, 4}}));
  EXPECT_THROW((Tensor{Shape{2, 2}, {1, 2, 3}}), ShapeError);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t{Shape{2, 3}, {0, 1, 2, 3, 4, 5}};
  EXPECT_EQ(t(0, 0), 0.0f);
  EXPECT_EQ(t(0, 2), 2.0f);
  EXPECT_EQ(t(1, 0), 3.0f);
  EXPECT_EQ(t(1, 2), 5.0f);
}

TEST(Tensor, Rank3And4Indexing) {
  Tensor t3{Shape{2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7}};
  EXPECT_EQ(t3(1, 0, 1), 5.0f);
  Tensor t4{Shape{1, 2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7}};
  EXPECT_EQ(t4(0, 1, 1, 0), 6.0f);
}

TEST(Tensor, IndexingWrongRankThrows) {
  Tensor t{Shape{2, 3}};
  EXPECT_THROW(t(0), ShapeError);
  EXPECT_THROW(t(0, 0, 0), ShapeError);
}

TEST(Tensor, OffsetComputesRowMajor) {
  Tensor t{Shape{3, 4, 5}};
  EXPECT_EQ(t.offset({0, 0, 0}), 0u);
  EXPECT_EQ(t.offset({1, 2, 3}), 1u * 20 + 2u * 5 + 3u);
  EXPECT_THROW(t.offset({3, 0, 0}), ShapeError);
  EXPECT_THROW(t.offset({0, 0}), ShapeError);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t{Shape{2}};
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t{Shape{2, 3}, {0, 1, 2, 3, 4, 5}};
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), ShapeError);
}

TEST(Tensor, Equality) {
  Tensor a{Shape{2}, {1, 2}};
  Tensor b{Shape{2}, {1, 2}};
  Tensor c{Shape{2}, {1, 3}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, a.reshaped(Shape{1, 2}));
}

TEST(Tensor, OnesFactory) {
  const Tensor t = Tensor::ones(Shape{3});
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[2], 1.0f);
}

TEST(TensorOps, AddSubMul) {
  Tensor a{Shape{3}, {1, 2, 3}};
  Tensor b{Shape{3}, {4, 5, 6}};
  EXPECT_EQ(ops::add(a, b), (Tensor{Shape{3}, {5, 7, 9}}));
  EXPECT_EQ(ops::sub(b, a), (Tensor{Shape{3}, {3, 3, 3}}));
  EXPECT_EQ(ops::mul(a, b), (Tensor{Shape{3}, {4, 10, 18}}));
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a{Shape{3}};
  Tensor b{Shape{4}};
  EXPECT_THROW(ops::add(a, b), ShapeError);
}

TEST(TensorOps, AxpyAndScale) {
  Tensor a{Shape{2}, {1, 1}};
  Tensor b{Shape{2}, {2, 4}};
  ops::axpy_inplace(a, 0.5f, b);
  EXPECT_EQ(a, (Tensor{Shape{2}, {2, 3}}));
  ops::scale_inplace(a, 2.0f);
  EXPECT_EQ(a, (Tensor{Shape{2}, {4, 6}}));
  EXPECT_EQ(ops::scale(a, 0.5f), (Tensor{Shape{2}, {2, 3}}));
}

TEST(TensorOps, Map) {
  Tensor a{Shape{3}, {-1, 0, 2}};
  const Tensor out = ops::map(a, [](float x) { return x * x; });
  EXPECT_EQ(out, (Tensor{Shape{3}, {1, 0, 4}}));
}

TEST(TensorOps, MatvecMatchesManual) {
  Tensor w{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  Tensor x{Shape{3}, {1, 0, -1}};
  const Tensor y = ops::matvec(w, x);
  EXPECT_FLOAT_EQ(y[0], 1 - 3);
  EXPECT_FLOAT_EQ(y[1], 4 - 6);
}

TEST(TensorOps, MatvecTransposeMatchesManual) {
  Tensor w{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  Tensor g{Shape{2}, {1, -1}};
  const Tensor x = ops::matvec_transpose(w, g);
  EXPECT_FLOAT_EQ(x[0], 1 - 4);
  EXPECT_FLOAT_EQ(x[1], 2 - 5);
  EXPECT_FLOAT_EQ(x[2], 3 - 6);
}

TEST(TensorOps, MatmulMatchesManual) {
  Tensor a{Shape{2, 2}, {1, 2, 3, 4}};
  Tensor b{Shape{2, 2}, {5, 6, 7, 8}};
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c, (Tensor{Shape{2, 2}, {19, 22, 43, 50}}));
}

TEST(TensorOps, MatmulShapeCheck) {
  Tensor a{Shape{2, 3}};
  Tensor b{Shape{4, 2}};
  EXPECT_THROW(ops::matmul(a, b), ShapeError);
}

TEST(TensorOps, Reductions) {
  Tensor a{Shape{4}, {3, -1, 7, 0}};
  EXPECT_DOUBLE_EQ(ops::sum(a), 9.0);
  EXPECT_FLOAT_EQ(ops::max_value(a), 7.0f);
  EXPECT_FLOAT_EQ(ops::min_value(a), -1.0f);
  EXPECT_EQ(ops::argmax(a), 2u);
}

TEST(TensorOps, ArgmaxFirstOccurrence) {
  Tensor a{Shape{3}, {5, 5, 1}};
  EXPECT_EQ(ops::argmax(a), 0u);
}

TEST(TensorOps, SoftmaxNormalizes) {
  Tensor logits{Shape{3}, {1.0f, 2.0f, 3.0f}};
  const Tensor p = ops::softmax(logits);
  double sum = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(p[i], 0.0f);
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(TensorOps, SoftmaxStableForLargeLogits) {
  Tensor logits{Shape{2}, {1000.0f, 1000.0f}};
  const Tensor p = ops::softmax(logits);
  EXPECT_NEAR(p[0], 0.5, 1e-6);
}

TEST(TensorOps, Relu) {
  Tensor a{Shape{3}, {-2, 0, 3}};
  EXPECT_EQ(ops::relu(a), (Tensor{Shape{3}, {0, 0, 3}}));
}

TEST(TensorOps, MeanAbsDiffAndAllclose) {
  Tensor a{Shape{2}, {1.0f, 2.0f}};
  Tensor b{Shape{2}, {1.1f, 1.9f}};
  EXPECT_NEAR(ops::mean_abs_diff(a, b), 0.1, 1e-6);
  EXPECT_TRUE(ops::allclose(a, a));
  EXPECT_FALSE(ops::allclose(a, b));
  EXPECT_TRUE(ops::allclose(a, b, /*rtol=*/0.2, /*atol=*/0.0));
  EXPECT_FALSE(ops::allclose(a, Tensor{Shape{3}}));
}

}  // namespace
}  // namespace tsnn
