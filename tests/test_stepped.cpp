// Tests for the time-major stepped simulation core (snn::SteppedRunner).
//
// The load-bearing contract: with the DecisionPolicy off, the stepped core
// is bit-identical to the layer-sequential reference -- same logits, same
// spike counts, same per-train tallies -- across every coding scheme, both
// stage topologies (dense-only and conv/pool), and every noise condition.
// Policy edge cases (never-firing margin, min_timesteps == window, hard
// deadline) and the determinism contract (early exit must not perturb the
// per-image RNG streams of later images) ride on top, plus unit coverage
// for EventBuffer's incremental close_step() production.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coding/registry.h"
#include "common/error.h"
#include "core/ttas.h"
#include "noise/noise.h"
#include "snn/event_buffer.h"
#include "snn/simulator.h"
#include "snn/topology.h"
#include "snn/workspace.h"

namespace tsnn::snn {
namespace {

/// Two-stage dense model (5 -> 4 -> 3), the simulator-golden fixture shape.
SnnModel dense_model() {
  SnnModel model(Shape{5});
  Tensor w1{Shape{4, 5}};
  for (std::size_t i = 0; i < w1.numel(); ++i) {
    w1[i] = 0.07f * static_cast<float>((i * 13) % 11) - 0.2f;
  }
  Tensor w2{Shape{3, 4}};
  for (std::size_t i = 0; i < w2.numel(); ++i) {
    w2[i] = 0.11f * static_cast<float>((i * 7) % 9) - 0.3f;
  }
  model.add_stage("h", std::make_unique<DenseTopology>(w1));
  model.add_stage("r", std::make_unique<DenseTopology>(w2));
  return model;
}

/// Conv/pool/dense model on an 8x8 input, the zero-alloc fixture shape.
SnnModel conv_model() {
  SnnModel model(Shape{1, 8, 8});
  Tensor conv_w{Shape{4, 1, 3, 3}};
  for (std::size_t i = 0; i < conv_w.numel(); ++i) {
    conv_w[i] = 0.05f * static_cast<float>((i * 17) % 13) - 0.25f;
  }
  model.add_stage("conv", std::make_unique<ConvTopology>(conv_w, 8, 8,
                                                         /*stride=*/1,
                                                         /*pad=*/1));
  model.add_stage("pool", std::make_unique<PoolTopology>(4, 8, 8, 2));
  Tensor dense_w{Shape{5, 64}};
  for (std::size_t i = 0; i < dense_w.numel(); ++i) {
    dense_w[i] = 0.03f * static_cast<float>((i * 7) % 17) - 0.2f;
  }
  model.add_stage("readout", std::make_unique<DenseTopology>(dense_w));
  return model;
}

Tensor image_for(const SnnModel& model) {
  Tensor img{model.input_shape()};
  for (std::size_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>((i * 31) % 64) / 64.0f;
  }
  return img;
}

CodingSchemePtr scheme_for(Coding c) {
  return c == Coding::kTtas ? core::make_ttas(5) : coding::make_scheme(c);
}

const std::vector<Coding>& all_codings() {
  static const std::vector<Coding> kCodings{Coding::kRate, Coding::kPhase,
                                            Coding::kBurst, Coding::kTtfs,
                                            Coding::kTtas};
  return kCodings;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.logits, b.logits) << what;
  EXPECT_EQ(a.predicted_class, b.predicted_class) << what;
  EXPECT_EQ(a.total_spikes, b.total_spikes) << what;
  EXPECT_EQ(a.layer_spikes, b.layer_spikes) << what;
  EXPECT_EQ(a.decision_timestep, b.decision_timestep) << what;
  EXPECT_EQ(a.margin, b.margin) << what;
}

// ---------------------------------------------------------------------------
// Policy off => the stepped core is bit-identical to the reference, for
// every coding x {dense, conv} x {clean, deletion, jitter}.

TEST(SteppedCore, PolicyOffBitIdenticalToSequential) {
  const SnnModel dense = dense_model();
  const SnnModel conv = conv_model();
  SimWorkspace seq_ws, stepped_ws;  // reused across all combos, like a sweep
  SimResult seq, stepped;
  for (const SnnModel* model : {&dense, &conv}) {
    const Tensor img = image_for(*model);
    for (const Coding c : all_codings()) {
      const auto scheme = scheme_for(c);
      for (int cond = 0; cond < 3; ++cond) {
        const NoiseModelPtr noise =
            cond == 0 ? nullptr
                      : (cond == 1 ? noise::make_deletion(0.3)
                                   : noise::make_jitter(1.0));
        for (std::uint64_t stream = 0; stream < 2; ++stream) {
          Rng rng1 = Rng::for_stream(9001, stream);
          Rng rng2 = Rng::for_stream(9001, stream);
          simulate_sequential_into(
              SimRequest{model, scheme.get(), noise.get(), &rng1, &seq_ws},
              img, seq);
          simulate_stepped_into(
              SimRequest{model, scheme.get(), noise.get(), &rng2, &stepped_ws},
              img, stepped);
          expect_identical(seq, stepped,
                           coding_name(c) + " cond " + std::to_string(cond) +
                               " stream " + std::to_string(stream));
        }
      }
    }
  }
}

// simulate_into() itself routes by policy: off -> reference, and the two
// entry points agree with the explicit cores.

TEST(SteppedCore, SimulateIntoRoutesByPolicy) {
  const SnnModel model = dense_model();
  const Tensor img = image_for(model);
  const auto scheme = scheme_for(Coding::kRate);
  SimResult via_router, via_core;
  simulate_into(SimRequest{&model, scheme.get()}, img, via_router);
  simulate_sequential_into(SimRequest{&model, scheme.get()}, img, via_core);
  expect_identical(via_router, via_core, "policy off routes to reference");

  SimRequest req{&model, scheme.get()};
  req.policy.mode = DecisionPolicy::Mode::kMargin;
  req.policy.margin = 0.01f;
  req.policy.min_timesteps = 1;
  simulate_into(req, img, via_router);
  simulate_stepped_into(req, img, via_core);
  expect_identical(via_router, via_core, "policy on routes to stepped");
}

// ---------------------------------------------------------------------------
// Policy edge cases.

TEST(SteppedCore, NeverFiringMarginConsumesFullWindow) {
  // A margin no logit gap can reach never exits early: results identical to
  // the reference, decision_timestep == the full readout window.
  const SnnModel model = conv_model();
  const Tensor img = image_for(model);
  for (const Coding c : all_codings()) {
    const auto scheme = scheme_for(c);
    SimResult ref, res;
    simulate_sequential_into(SimRequest{&model, scheme.get()}, img, ref);
    SimRequest req{&model, scheme.get()};
    req.policy.mode = DecisionPolicy::Mode::kMargin;
    req.policy.margin = 1e9f;
    simulate_stepped_into(req, img, res);
    expect_identical(ref, res, std::string("never-firing ") + coding_name(c));
    // The reference's decision_timestep is by contract the full readout
    // window, so equality above also pins res to it; assert it is nonzero
    // to guard against a vacuous 0 == 0 comparison.
    EXPECT_GT(res.decision_timestep, 0u) << coding_name(c);
  }
}

TEST(SteppedCore, MinTimestepsAtWindowIsNoOp) {
  // margin 0 exits at the first policy check, but min_timesteps == the full
  // window defers that check to the last step: a no-op policy.
  const SnnModel model = dense_model();
  const Tensor img = image_for(model);
  for (const Coding c : all_codings()) {
    const auto scheme = scheme_for(c);
    SimResult ref, res;
    simulate_sequential_into(SimRequest{&model, scheme.get()}, img, ref);
    SimRequest req{&model, scheme.get()};
    req.policy.mode = DecisionPolicy::Mode::kMargin;
    req.policy.margin = 0.0f;
    req.policy.min_timesteps = ref.decision_timestep;  // == readout window
    simulate_stepped_into(req, img, res);
    expect_identical(ref, res, std::string("min==window ") + coding_name(c));
  }
}

TEST(SteppedCore, DeadlineCapsConsumedTimesteps) {
  const SnnModel model = dense_model();
  const Tensor img = image_for(model);
  const auto scheme = scheme_for(Coding::kRate);
  SimRequest req{&model, scheme.get()};
  req.policy.deadline = 3;  // mode stays kOff; deadline alone enables
  SimResult res;
  simulate_into(req, img, res);
  EXPECT_EQ(res.decision_timestep, 3u);
  // The recorded margin is the gap of the truncated logits.
  EXPECT_EQ(res.margin,
            logit_margin(res.logits.data(), res.logits.numel()));
}

TEST(SteppedCore, AggressiveMarginExitsEarlyOnTemporalCoding) {
  // TTFS concentrates its evidence in the earliest timesteps; a modest
  // margin threshold should decide well before the full window.
  const SnnModel model = conv_model();
  const Tensor img = image_for(model);
  const auto scheme = scheme_for(Coding::kTtfs);
  SimResult ref, res;
  simulate_sequential_into(SimRequest{&model, scheme.get()}, img, ref);
  SimRequest req{&model, scheme.get()};
  req.policy.mode = DecisionPolicy::Mode::kMargin;
  req.policy.margin = 1e-4f;
  req.policy.min_timesteps = 1;
  simulate_stepped_into(req, img, res);
  EXPECT_LT(res.decision_timestep, ref.decision_timestep);
  EXPECT_GE(res.margin, req.policy.margin);
}

// ---------------------------------------------------------------------------
// Determinism: early exit on image i must not perturb image i+1 (each image
// draws noise from its own Rng stream; an exited simulation leaves no state
// behind in the shared workspace that changes the next image's result).

TEST(SteppedCore, EarlyExitDoesNotPerturbLaterImages) {
  const SnnModel model = conv_model();
  const auto scheme = scheme_for(Coding::kTtas);
  const auto noise = noise::make_deletion(0.3);
  std::vector<Tensor> images;
  for (std::size_t i = 0; i < 4; ++i) {
    Tensor img{model.input_shape()};
    for (std::size_t j = 0; j < img.numel(); ++j) {
      img[j] = static_cast<float>((j * 31 + i * 7) % 64) / 64.0f;
    }
    images.push_back(std::move(img));
  }

  DecisionPolicy aggressive;
  aggressive.mode = DecisionPolicy::Mode::kMargin;
  aggressive.margin = 1e-4f;
  aggressive.min_timesteps = 1;

  // Solo runs: each image in a fresh workspace.
  std::vector<SimResult> solo(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    SimWorkspace ws;
    Rng rng = Rng::for_stream(777, i);
    simulate_stepped_into(
        SimRequest{&model, scheme.get(), noise.get(), &rng, &ws, aggressive},
        images[i], solo[i]);
  }

  // Batch run: same streams back to back over one shared workspace, where a
  // leak from an early-exited image could surface.
  SimWorkspace ws;
  for (std::size_t i = 0; i < images.size(); ++i) {
    Rng rng = Rng::for_stream(777, i);
    SimResult batched;
    simulate_stepped_into(
        SimRequest{&model, scheme.get(), noise.get(), &rng, &ws, aggressive},
        images[i], batched);
    expect_identical(solo[i], batched, "image " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// EventBuffer incremental production.

TEST(EventBufferSteps, CloseStepMatchesBatchFinalize) {
  EventBuffer inc, batch;
  EventSortScratch scratch;
  inc.reset(4, 6);
  batch.reset(4, 6);
  const std::vector<std::pair<std::int32_t, std::uint32_t>> events{
      {0, 1}, {0, 3}, {2, 0}, {3, 2}, {3, 3}, {5, 1}};
  std::size_t next = 0;
  for (std::int32_t t = 0; t < 6; ++t) {
    while (next < events.size() && events[next].first == t) {
      inc.push(events[next].first, events[next].second);
      ++next;
    }
    inc.close_step();
    EXPECT_EQ(inc.steps_closed(), static_cast<std::size_t>(t) + 1);
    // Closed prefix is readable before finalize.
    EXPECT_NO_THROW(inc.step(static_cast<std::size_t>(t)));
  }
  for (const auto& [t, n] : events) {
    batch.push(t, n);
  }
  batch.finalize(scratch);
  // finalize() subsumes the incremental offsets: identical spans either way.
  inc.finalize(scratch);
  for (std::size_t t = 0; t < 6; ++t) {
    ASSERT_EQ(inc.step_count(t), batch.step_count(t)) << "step " << t;
    for (std::size_t i = 0; i < inc.step_count(t); ++i) {
      EXPECT_EQ(inc.step_begin(t)[i], batch.step_begin(t)[i]);
    }
  }
}

TEST(EventBufferSteps, ClosedStepRejectsLatePushes) {
  EventBuffer buf;
  buf.reset(4, 4);
  buf.push(0, 1);
  buf.close_step();
  EXPECT_THROW(buf.push(0, 2), InvalidArgument);  // step 0 already closed
  buf.push(1, 2);                                 // later steps still open
  EXPECT_EQ(buf.steps_closed(), 1u);
}

TEST(EventBufferSteps, UnclosedStepsUnreadableUntilFinalize) {
  EventBuffer buf;
  EventSortScratch scratch;
  buf.reset(2, 3);
  buf.push(0, 0);
  buf.close_step();
  EXPECT_NO_THROW(buf.step_count(0));
  EXPECT_THROW(buf.step_count(1), InvalidArgument);
  buf.finalize(scratch);
  EXPECT_NO_THROW(buf.step_count(2));
}

TEST(EventBufferSteps, ResetClearsClosedSteps) {
  EventBuffer buf;
  buf.reset(2, 2);
  buf.push(0, 0);
  buf.close_step();
  buf.reset(2, 2);
  EXPECT_EQ(buf.steps_closed(), 0u);
  buf.push(0, 1);  // would throw if the old closed_ survived the reset
  EXPECT_EQ(buf.steps_closed(), 0u);
}

}  // namespace
}  // namespace tsnn::snn
