// Tests for TTAS coding -- the paper's contribution. Verifies the IFB burst
// mechanics, the kernel-sum scale factor, and the two robustness properties
// that motivate TTAS: graceful degradation under deletion and variance
// reduction under jitter.
#include <gtest/gtest.h>

#include <cmath>

#include "coding/registry.h"
#include "core/ttas.h"
#include "noise/deletion.h"
#include "noise/jitter.h"
#include "snn/topology.h"
#include "tensor/stats.h"

namespace tsnn::core {
namespace {

using snn::Coding;
using snn::CodingParams;
using snn::LayerRole;
using snn::SpikeRaster;

TEST(Ttas, KindIsTtas) {
  const auto scheme = make_ttas(5);
  EXPECT_EQ(scheme->kind(), Coding::kTtas);
  EXPECT_EQ(scheme->name(), "ttas(5)");
}

TEST(Ttas, Ttas1EquivalentToTtfs) {
  // TTAS with burst duration 1 degenerates to plain TTFS: identical trains.
  const auto ttas1 = make_ttas(1);
  const auto ttfs = coding::make_scheme(Coding::kTtfs);
  Tensor a{Shape{10}};
  for (std::size_t i = 0; i < 10; ++i) {
    a[i] = 0.08f * static_cast<float>(i + 1);
  }
  EXPECT_EQ(ttas1->encode(a).to_events(), ttfs->encode(a).to_events());
}

TEST(Ttas, BurstSpikesAreConsecutiveFromFirstSpike) {
  const auto scheme = make_ttas(4);
  Tensor a{Shape{1}, {0.5f}};
  const SpikeRaster r = scheme->encode(a);
  EXPECT_EQ(r.total_spikes(), 4u);
  const std::int32_t t1 = r.first_spike_time(0);
  for (std::int32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(r.at(static_cast<std::size_t>(t1 + j)).size(), 1u);
  }
}

TEST(Ttas, CleanDecodeMatchesTtfsValue) {
  // C_A folding makes the delivered value independent of burst duration.
  Tensor a{Shape{6}, {0.1f, 0.25f, 0.4f, 0.55f, 0.7f, 0.9f}};
  const Tensor base = coding::make_scheme(Coding::kTtfs)->decode(
      coding::make_scheme(Coding::kTtfs)->encode(a));
  for (const std::size_t ta : {2, 3, 5, 10}) {
    const auto scheme = make_ttas(ta);
    const Tensor decoded = scheme->decode(scheme->encode(a));
    for (std::size_t i = 0; i < a.numel(); ++i) {
      EXPECT_NEAR(decoded[i], base[i], 1e-4f) << "ta=" << ta << " i=" << i;
    }
  }
}

TEST(Ttas, KernelSumScaleIndependentOfFirstSpikeTime) {
  // C_A = z(t1)/Z_hat must not depend on t1 for the exponential kernel.
  // Use activations exactly on the kernel grid e^{-t/tau} so quantization
  // vanishes and the decode must be exact for both early and late spikes.
  const auto scheme = make_ttas(5);
  const float tau = scheme->params().tau;
  Tensor a{Shape{2}};
  a[0] = std::exp(-1.0f / tau);   // t1 = 1 (early)
  a[1] = std::exp(-20.0f / tau);  // t1 = 20 (late)
  const SpikeRaster r = scheme->encode(a);
  const Tensor decoded = scheme->decode(r);
  EXPECT_NEAR(decoded[0] / a[0], 1.0f, 1e-3f);
  EXPECT_NEAR(decoded[1] / a[1], 1.0f, 1e-3f);
}

TEST(Ttas, DeletionDegradesGracefully) {
  // TTFS under deletion is all-or-none; TTAS(k) delivers intermediate
  // fractions. Check the delivered-value distribution directly.
  const float a_val = 0.6f;
  Tensor a{Shape{1}, {a_val}};
  const double p = 0.5;

  auto delivered_values = [&](const snn::CodingScheme& scheme) {
    const SpikeRaster clean = scheme.encode(a);
    noise::DeletionNoise noise(p);
    Rng rng(7);
    std::vector<float> vals;
    for (int i = 0; i < 800; ++i) {
      vals.push_back(scheme.decode(noise.apply(clean, rng))[0]);
    }
    return vals;
  };

  const auto ttfs_vals = delivered_values(*coding::make_scheme(Coding::kTtfs));
  const auto ttas_vals = delivered_values(*make_ttas(5));

  // TTFS: strictly 0 or full value.
  for (const float v : ttfs_vals) {
    EXPECT_TRUE(v < 1e-6f || std::fabs(v - ttfs_vals[0] / (ttfs_vals[0] > 0 ? 1 : 1)) >= 0.0f);
    EXPECT_TRUE(v < 1e-6f || v > 0.3f);
  }
  // TTAS: intermediate values exist.
  int intermediate = 0;
  for (const float v : ttas_vals) {
    if (v > 0.1f * a_val && v < 0.9f * a_val) {
      ++intermediate;
    }
  }
  EXPECT_GT(intermediate, 100);

  // Expected value is (1-p)*clean for both.
  const float ttas_clean = make_ttas(5)->decode(make_ttas(5)->encode(a))[0];
  EXPECT_NEAR(stats::mean(ttas_vals), (1.0 - p) * ttas_clean, 0.03);

  // All-or-none total loss is much rarer for TTAS: P(all 5 deleted) = p^5.
  int ttas_zero = 0;
  for (const float v : ttas_vals) {
    ttas_zero += v < 1e-6f ? 1 : 0;
  }
  int ttfs_zero = 0;
  for (const float v : ttfs_vals) {
    ttfs_zero += v < 1e-6f ? 1 : 0;
  }
  EXPECT_LT(ttas_zero, ttfs_zero / 4);
}

TEST(Ttas, JitterVarianceShrinksWithBurstDuration) {
  // The "average spike time" property: delivered value variance under
  // jitter decreases as t_a grows.
  Tensor a{Shape{1}, {0.5f}};
  const double sigma = 1.5;

  auto delivered_stddev = [&](const snn::CodingScheme& scheme) {
    const SpikeRaster clean = scheme.encode(a);
    noise::JitterNoise noise(sigma);
    Rng rng(21);
    std::vector<float> vals;
    for (int i = 0; i < 600; ++i) {
      vals.push_back(scheme.decode(noise.apply(clean, rng))[0]);
    }
    return stats::stddev(vals);
  };

  const double sd1 = delivered_stddev(*coding::make_scheme(Coding::kTtfs));
  const double sd3 = delivered_stddev(*make_ttas(3));
  const double sd10 = delivered_stddev(*make_ttas(10));
  EXPECT_LT(sd3, sd1);
  EXPECT_LT(sd10, sd3);
  // Roughly 1/sqrt(k) scaling: sd10 should be well under half of sd1.
  EXPECT_LT(sd10, 0.55 * sd1);
}

TEST(Ttas, LayerBurstMatchesEq4Reset) {
  // A hidden TTAS neuron must emit exactly burst_duration consecutive
  // spikes starting at its first-crossing time, then stay silent (-inf
  // reset): paper Eq. 4.
  const auto scheme = make_ttas(3);
  Tensor w{Shape{1, 1}, {1.0f}};
  snn::DenseTopology syn{w};
  Tensor a{Shape{1}, {0.6f}};
  const SpikeRaster out =
      scheme->run_layer(scheme->encode(a), syn, LayerRole::kFirstHidden);
  EXPECT_EQ(out.total_spikes(), 3u);
  const std::int32_t t1 = out.first_spike_time(0);
  ASSERT_GE(t1, 0);
  for (std::int32_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out.at(static_cast<std::size_t>(t1 + j)).size(), 1u);
  }
  // Nothing after the burst.
  for (std::size_t t = static_cast<std::size_t>(t1 + 3); t < out.window(); ++t) {
    EXPECT_TRUE(out.at(t).empty());
  }
}

TEST(Ttas, MakeTtasValidatesParams) {
  snn::CodingParams params = coding::default_params(Coding::kTtas);
  params.burst_duration = 0;
  EXPECT_THROW(TtasScheme{params}, InvalidArgument);
}

TEST(Ttas, FactoryFromParams) {
  snn::CodingParams params = coding::default_params(Coding::kTtas);
  params.burst_duration = 7;
  const auto scheme = make_ttas(params);
  EXPECT_EQ(scheme->name(), "ttas(7)");
}

}  // namespace
}  // namespace tsnn::core
