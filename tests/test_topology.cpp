// Tests for synapse topologies: event accumulation must agree exactly with
// the dense reference, and conv topology must match the DNN conv layer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dnn/conv2d.h"
#include "snn/topology.h"
#include "tensor/tensor_ops.h"

namespace tsnn::snn {
namespace {

Tensor random_tensor(const Shape& shape, std::uint64_t seed) {
  Tensor t{shape};
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Property: sum of per-event accumulate() over x equals apply_dense(x).
void check_event_dense_agreement(const SynapseTopology& syn, std::uint64_t seed) {
  const Tensor x = random_tensor(Shape{syn.in_size()}, seed);
  std::vector<float> via_events(syn.out_size(), 0.0f);
  for (std::size_t i = 0; i < syn.in_size(); ++i) {
    if (x[i] != 0.0f) {
      syn.accumulate(i, x[i], via_events.data());
    }
  }
  std::vector<float> via_dense(syn.out_size(), 0.0f);
  syn.apply_dense(x.data(), via_dense.data());
  for (std::size_t j = 0; j < syn.out_size(); ++j) {
    EXPECT_NEAR(via_events[j], via_dense[j], 1e-4f) << "output " << j;
  }
}

TEST(DenseTopology, EventEqualsDense) {
  DenseTopology syn(random_tensor(Shape{7, 5}, 1));
  EXPECT_EQ(syn.in_size(), 5u);
  EXPECT_EQ(syn.out_size(), 7u);
  check_event_dense_agreement(syn, 2);
}

TEST(DenseTopology, AccumulateSingleColumn) {
  Tensor w{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  DenseTopology syn(w);
  std::vector<float> u(2, 0.0f);
  syn.accumulate(1, 2.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 4.0f);
  EXPECT_FLOAT_EQ(u[1], 10.0f);
  EXPECT_THROW(syn.accumulate(3, 1.0f, u.data()), InvalidArgument);
}

TEST(DenseTopology, ScaleWeights) {
  Tensor w{Shape{1, 2}, {1, 2}};
  DenseTopology syn(w);
  syn.scale_weights(3.0f);
  std::vector<float> u(1, 0.0f);
  syn.accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 3.0f);
}

TEST(DenseTopology, CloneIsDeep) {
  DenseTopology syn(Tensor{Shape{1, 1}, {1.0f}});
  auto copy = syn.clone();
  copy->scale_weights(5.0f);
  std::vector<float> u(1, 0.0f);
  syn.accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 1.0f);  // original untouched
}

TEST(ConvTopology, EventEqualsDense) {
  ConvTopology syn(random_tensor(Shape{4, 3, 3, 3}, 3), 6, 6, 1, 1);
  EXPECT_EQ(syn.in_size(), 3u * 36u);
  EXPECT_EQ(syn.out_size(), 4u * 36u);
  check_event_dense_agreement(syn, 4);
}

TEST(ConvTopology, EventEqualsDenseStride2NoPad) {
  ConvTopology syn(random_tensor(Shape{2, 1, 3, 3}, 5), 7, 7, 2, 0);
  EXPECT_EQ(syn.out_h(), 3u);
  EXPECT_EQ(syn.out_w(), 3u);
  check_event_dense_agreement(syn, 6);
}

TEST(ConvTopology, MatchesDnnConvForward) {
  const Tensor w = random_tensor(Shape{3, 2, 3, 3}, 7);
  dnn::Conv2dSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                       .stride = 1, .pad = 1, .use_bias = false};
  dnn::Conv2d conv("c", spec);
  conv.weight().value = w;
  const Tensor x = random_tensor(Shape{2, 5, 5}, 8);
  const Tensor y_dnn = conv.forward(x, false);

  ConvTopology syn(w, 5, 5, 1, 1);
  std::vector<float> y_snn(syn.out_size(), 0.0f);
  syn.apply_dense(x.data(), y_snn.data());
  for (std::size_t i = 0; i < y_dnn.numel(); ++i) {
    EXPECT_NEAR(y_dnn[i], y_snn[i], 1e-4f);
  }
}

TEST(ConvTopology, ScaleWeights) {
  ConvTopology syn(Tensor{Shape{1, 1, 1, 1}, {2.0f}}, 2, 2, 1, 0);
  syn.scale_weights(0.5f);
  std::vector<float> u(syn.out_size(), 0.0f);
  syn.accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 1.0f);
}

TEST(PoolTopology, EventEqualsDense) {
  PoolTopology syn(3, 4, 4, 2);
  EXPECT_EQ(syn.in_size(), 48u);
  EXPECT_EQ(syn.out_size(), 12u);
  check_event_dense_agreement(syn, 9);
}

TEST(PoolTopology, AveragesUniformInput) {
  PoolTopology syn(1, 2, 2, 2);
  std::vector<float> y(1, 0.0f);
  const float x[4] = {1, 2, 3, 4};
  syn.apply_dense(x, y.data());
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(PoolTopology, ScaleAffectsPoolWeight) {
  PoolTopology syn(1, 2, 2, 2);
  syn.scale_weights(4.0f);
  EXPECT_FLOAT_EQ(syn.pool_weight(), 1.0f);  // 1/4 * 4
}

TEST(PoolTopology, RejectsIndivisible) {
  EXPECT_THROW(PoolTopology(1, 3, 4, 2), ShapeError);
}

TEST(ConvTopology, CloneIndependence) {
  ConvTopology syn(random_tensor(Shape{2, 2, 3, 3}, 10), 4, 4, 1, 1);
  auto copy = syn.clone();
  copy->scale_weights(0.0f);
  check_event_dense_agreement(syn, 11);  // original still consistent/nonzero
  std::vector<float> u(copy->out_size(), 0.0f);
  copy->accumulate(0, 1.0f, u.data());
  for (const float v : u) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace tsnn::snn
