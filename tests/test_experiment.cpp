// Tests for the experiment harness: method specs, noise sweeps, and the
// grid scheduler (thread-count invariance, row streaming order, the
// scaled-model cache, and the effective-WS bookkeeping).
#include <gtest/gtest.h>

#include "coding/registry.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/weight_scaling.h"
#include "snn/topology.h"

namespace tsnn::core {
namespace {

using snn::Coding;

snn::SnnModel tiny_model() {
  snn::SnnModel model(Shape{4});
  Tensor eye{Shape{4, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    eye(i, i) = 1.0f;
  }
  model.add_stage("hidden", std::make_unique<snn::DenseTopology>(eye));
  Tensor readout{Shape{2, 4}, {1, 1, 0, 0, 0, 0, 1, 1}};
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(readout));
  return model;
}

struct Fixture {
  snn::SnnModel model = tiny_model();
  std::vector<Tensor> images;
  std::vector<std::size_t> labels;

  Fixture() {
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
      Tensor x{Shape{4}};
      const std::size_t cls = i % 2;
      for (std::size_t j = 0; j < 4; ++j) {
        const bool hot = (j / 2) == cls;
        x[j] = static_cast<float>(rng.uniform(hot ? 0.6 : 0.05, hot ? 0.9 : 0.2));
      }
      images.push_back(std::move(x));
      labels.push_back(cls);
    }
  }

  SweepInputs inputs() const {
    SweepInputs in;
    in.model = &model;
    in.images = &images;
    in.labels = &labels;
    return in;
  }
};

TEST(MethodSpec, BaselineLabels) {
  EXPECT_EQ(baseline_method(Coding::kRate, false).label, "rate");
  EXPECT_EQ(baseline_method(Coding::kBurst, true).label, "burst+WS");
  EXPECT_TRUE(baseline_method(Coding::kBurst, true).weight_scaling);
}

TEST(MethodSpec, TtasLabels) {
  const MethodSpec spec = ttas_method(5, true);
  EXPECT_EQ(spec.label, "ttas(5)+WS");
  EXPECT_EQ(spec.params.burst_duration, 5u);
  EXPECT_EQ(spec.coding, Coding::kTtas);
}

TEST(DeletionSweep, ProducesRowPerMethodAndLevel) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, false),
                                        ttas_method(3, true)};
  const std::vector<double> levels{0.0, 0.3, 0.6};
  const auto rows = deletion_sweep(f.inputs(), methods, levels);
  ASSERT_EQ(rows.size(), 6u);
  for (const SweepRow& r : rows) {
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
    EXPECT_GT(r.mean_spikes, 0.0);
  }
}

TEST(DeletionSweep, CleanLevelIsNoiseless) {
  const Fixture f;
  const auto rows = deletion_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].accuracy, 1.0);  // tiny problem is separable
}

TEST(DeletionSweep, SpikesDecreaseWithP) {
  const Fixture f;
  const auto rows = deletion_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0, 0.5, 0.9});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[0].mean_spikes, rows[1].mean_spikes);
  EXPECT_GT(rows[1].mean_spikes, rows[2].mean_spikes);
}

TEST(JitterSweep, SpikeCountStableUnderJitter) {
  const Fixture f;
  const auto rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0, 2.0});
  ASSERT_EQ(rows.size(), 2u);
  // Jitter never deletes: spike counts stay within a few percent (layer
  // dynamics can shift slightly).
  EXPECT_NEAR(rows[1].mean_spikes / rows[0].mean_spikes, 1.0, 0.1);
}

TEST(JitterSweep, WeightScalingNotAppliedForJitter) {
  // WS compensates charge loss; jitter loses no charge, so a WS method at
  // jitter level sigma uses the unscaled model and matches the non-WS one.
  const Fixture f;
  const auto ws_rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, true)}, {1.0});
  const auto plain_rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {1.0});
  EXPECT_DOUBLE_EQ(ws_rows[0].accuracy, plain_rows[0].accuracy);
  EXPECT_DOUBLE_EQ(ws_rows[0].mean_spikes, plain_rows[0].mean_spikes);
}

TEST(Sweep, RowsForFiltersByMethod) {
  std::vector<SweepRow> rows{{"a", 0, 1, 1}, {"b", 0, 1, 1}, {"a", 1, 0.5, 1}};
  const auto only_a = rows_for(rows, "a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].level, 1.0);
  EXPECT_TRUE(rows_for(rows, "c").empty());
}

TEST(Sweep, ValidatesInputs) {
  SweepInputs in;  // null everything
  EXPECT_THROW(deletion_sweep(in, {}, {}), InvalidArgument);
}

TEST(Sweep, DeterministicForSeed) {
  const Fixture f;
  SweepInputs in = f.inputs();
  in.seed = 123;
  const auto a = deletion_sweep(in, {baseline_method(Coding::kRate, false)}, {0.4});
  const auto b = deletion_sweep(in, {baseline_method(Coding::kRate, false)}, {0.4});
  EXPECT_DOUBLE_EQ(a[0].accuracy, b[0].accuracy);
  EXPECT_DOUBLE_EQ(a[0].mean_spikes, b[0].mean_spikes);
}

void expect_rows_identical(const std::vector<SweepRow>& a,
                           const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].method, b[i].method) << "row " << i;
    EXPECT_DOUBLE_EQ(a[i].level, b[i].level) << "row " << i;
    EXPECT_DOUBLE_EQ(a[i].accuracy, b[i].accuracy) << "row " << i;
    EXPECT_DOUBLE_EQ(a[i].mean_spikes, b[i].mean_spikes) << "row " << i;
    EXPECT_DOUBLE_EQ(a[i].ws_factor, b[i].ws_factor) << "row " << i;
  }
}

TEST(GridScheduler, RowsBitIdenticalAt1_2_8Threads) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, false),
                                        baseline_method(Coding::kBurst, true),
                                        ttas_method(3, true)};
  const std::vector<double> levels{0.0, 0.3, 0.6};

  SweepInputs in = f.inputs();
  in.num_threads = 1;
  const auto serial = deletion_sweep(in, methods, levels);
  in.num_threads = 2;
  const auto grid2 = deletion_sweep(in, methods, levels);
  in.num_threads = 8;
  const auto grid8 = deletion_sweep(in, methods, levels);

  expect_rows_identical(serial, grid2);
  expect_rows_identical(serial, grid8);
}

TEST(GridScheduler, ExternalPersistentPoolMatchesSerial) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, true),
                                        ttas_method(2, false)};
  const std::vector<double> levels{0.0, 0.4, 0.7};
  const auto serial = deletion_sweep(f.inputs(), methods, levels);

  ThreadPool pool(4);
  SweepOptions options;
  options.pool = &pool;
  // Two sweeps over the same borrowed pool: warm-worker reuse across sweeps
  // must not perturb results.
  const auto first = deletion_sweep(f.inputs(), methods, levels, options);
  const auto second = deletion_sweep(f.inputs(), methods, levels, options);
  expect_rows_identical(serial, first);
  expect_rows_identical(serial, second);
}

TEST(GridScheduler, RowOrderIsMethodMajorAtAnyThreadCount) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, false),
                                        ttas_method(3, false)};
  const std::vector<double> levels{0.0, 0.2, 0.5};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SweepInputs in = f.inputs();
    in.num_threads = threads;
    const auto rows = jitter_sweep(in, methods, levels);
    ASSERT_EQ(rows.size(), 6u);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      for (std::size_t l = 0; l < levels.size(); ++l) {
        EXPECT_EQ(rows[m * levels.size() + l].method, methods[m].label);
        EXPECT_DOUBLE_EQ(rows[m * levels.size() + l].level, levels[l]);
      }
    }
  }
}

TEST(GridScheduler, RowsBitIdenticalAtAnyMicroBatch) {
  // micro_batch only shapes how the admission queue is pulled; the rows
  // must not move by a bit across batch sizes (and threads).
  const Fixture f;
  const snn::CodingSchemePtr scheme =
      coding::make_scheme(Coding::kRate, coding::default_params(Coding::kRate));
  std::vector<EvalCell> cells(4);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].model = &f.model;
    cells[c].scheme = scheme.get();
    cells[c].images = &f.images;
    cells[c].labels = &f.labels;
    cells[c].seed = 100 + c;
  }
  GridOptions serial;
  serial.num_threads = 1;
  const auto reference = run_grid(cells, serial);

  for (const std::size_t micro_batch :
       {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      GridOptions options;
      options.num_threads = threads;
      options.micro_batch = micro_batch;
      const auto batched = run_grid(cells, options);
      ASSERT_EQ(batched.size(), reference.size());
      for (std::size_t c = 0; c < reference.size(); ++c) {
        EXPECT_DOUBLE_EQ(batched[c].accuracy, reference[c].accuracy)
            << "cell " << c << " micro_batch " << micro_batch;
        EXPECT_DOUBLE_EQ(batched[c].mean_spikes, reference[c].mean_spikes)
            << "cell " << c << " micro_batch " << micro_batch;
        EXPECT_DOUBLE_EQ(batched[c].mean_decision_timesteps,
                         reference[c].mean_decision_timesteps)
            << "cell " << c << " micro_batch " << micro_batch;
      }
    }
  }
}

TEST(GridScheduler, ShardsPartitionTheGridAtAnyThreadCount) {
  // Reassembling every shard of an i/N split must reproduce the unsharded
  // run bit-for-bit, at any thread count per shard -- the merge_shards
  // contract. 7 cells so the split is uneven.
  const Fixture f;
  const snn::CodingSchemePtr scheme =
      coding::make_scheme(Coding::kRate, coding::default_params(Coding::kRate));
  std::vector<EvalCell> cells(7);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].model = &f.model;
    cells[c].scheme = scheme.get();
    cells[c].images = &f.images;
    cells[c].labels = &f.labels;
    cells[c].seed = 100 + c;
  }
  GridOptions serial;
  serial.num_threads = 1;
  const auto reference = run_grid(cells, serial);

  const std::size_t thread_counts[] = {1, 2, 8};
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}}) {
    std::vector<EvalCellResult> reassembled(cells.size());
    for (std::size_t i = 0; i < n; ++i) {
      GridOptions options;
      options.shard = GridShard{i, n};
      // Different shards on different thread counts, like an overnight
      // split across unequal machines.
      options.num_threads = thread_counts[i % 3];
      std::vector<std::size_t> emitted;
      options.on_cell = [&](std::size_t c, const EvalCellResult& r) {
        emitted.push_back(c);
        reassembled[c] = r;
      };
      const auto results = run_grid(cells, options);
      ASSERT_EQ(results.size(), cells.size());
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c % n == i) {
          EXPECT_DOUBLE_EQ(results[c].accuracy, reference[c].accuracy)
              << "cell " << c << " shard " << i << "/" << n;
        } else {
          // Unowned cells come back default-initialized, never evaluated.
          EXPECT_DOUBLE_EQ(results[c].mean_spikes, 0.0);
        }
      }
      // on_cell fires for owned cells only, in cell order.
      std::size_t expect_next = i;
      for (const std::size_t c : emitted) {
        EXPECT_EQ(c, expect_next);
        expect_next += n;
      }
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      EXPECT_DOUBLE_EQ(reassembled[c].accuracy, reference[c].accuracy)
          << "cell " << c << " N " << n;
      EXPECT_DOUBLE_EQ(reassembled[c].mean_spikes, reference[c].mean_spikes);
      EXPECT_DOUBLE_EQ(reassembled[c].mean_decision_timesteps,
                       reference[c].mean_decision_timesteps);
    }
  }

  // N > cell count: most shards own nothing and that is legal.
  GridOptions options;
  options.shard = GridShard{cells.size() + 1, cells.size() + 3};
  const auto empty = run_grid(cells, options);
  ASSERT_EQ(empty.size(), cells.size());
  for (const EvalCellResult& r : empty) {
    EXPECT_DOUBLE_EQ(r.mean_spikes, 0.0);
  }
}

TEST(GridScheduler, CompletedCellsAreInjectedNotReevaluated) {
  // The resume hook: cells the checkpoint already has are injected into the
  // result and emission streams without being executed, and the rest of the
  // grid is unaffected -- resuming is invisible downstream.
  const Fixture f;
  const snn::CodingSchemePtr scheme =
      coding::make_scheme(Coding::kRate, coding::default_params(Coding::kRate));
  std::vector<EvalCell> cells(5);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells[c].model = &f.model;
    cells[c].scheme = scheme.get();
    cells[c].images = &f.images;
    cells[c].labels = &f.labels;
    cells[c].seed = 100 + c;
  }
  GridOptions serial;
  serial.num_threads = 1;
  const auto reference = run_grid(cells, serial);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    GridOptions options;
    options.num_threads = threads;
    options.completed = [](std::size_t c, EvalCellResult* out) {
      if (c != 0 && c != 2) {
        return false;
      }
      out->accuracy = 0.125 + static_cast<double>(c);  // sentinel, not real
      out->mean_spikes = 1000.0;
      return true;
    };
    std::vector<std::size_t> emitted;
    options.on_cell = [&](std::size_t c, const EvalCellResult& r) {
      emitted.push_back(c);
      if (c == 0 || c == 2) {
        // Injected cells surface the checkpoint's values verbatim.
        EXPECT_DOUBLE_EQ(r.accuracy, 0.125 + static_cast<double>(c));
        EXPECT_DOUBLE_EQ(r.mean_spikes, 1000.0);
      } else {
        EXPECT_DOUBLE_EQ(r.accuracy, reference[c].accuracy);
        EXPECT_DOUBLE_EQ(r.mean_spikes, reference[c].mean_spikes);
      }
    };
    const auto results = run_grid(cells, options);
    ASSERT_EQ(emitted.size(), cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      EXPECT_EQ(emitted[c], c);  // emission order unchanged by injection
    }
    EXPECT_DOUBLE_EQ(results[0].accuracy, 0.125);
    EXPECT_DOUBLE_EQ(results[2].accuracy, 2.125);
  }
}

TEST(GridScheduler, RejectsInvalidShard) {
  const Fixture f;
  const snn::CodingSchemePtr scheme =
      coding::make_scheme(Coding::kRate, coding::default_params(Coding::kRate));
  std::vector<EvalCell> cells(1);
  cells[0].model = &f.model;
  cells[0].scheme = scheme.get();
  cells[0].images = &f.images;
  cells[0].labels = &f.labels;

  GridOptions options;
  options.shard = GridShard{2, 2};  // index must be < count
  EXPECT_THROW(run_grid(cells, options), InvalidArgument);
  options.shard = GridShard{0, 0};  // zero shards is meaningless
  EXPECT_THROW(run_grid(cells, options), InvalidArgument);
}

TEST(GridScheduler, StreamsRowsInGridOrderAsCellsFinish) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, false),
                                        baseline_method(Coding::kBurst, true)};
  const std::vector<double> levels{0.0, 0.3, 0.6, 0.9};

  SweepInputs in = f.inputs();
  in.num_threads = 4;
  std::vector<SweepRow> streamed;
  SweepOptions options;
  options.on_row = [&streamed](const SweepRow& r) { streamed.push_back(r); };
  const auto returned = deletion_sweep(in, methods, levels, options);
  expect_rows_identical(returned, streamed);
}

TEST(GridScheduler, RecordsEffectiveWeightScaling) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, true),
                                        baseline_method(Coding::kRate, false)};

  // Deletion: a +WS method at p > 0 runs scaled by 1/(1-p); the clean point
  // and non-WS methods run unscaled.
  const auto del = deletion_sweep(f.inputs(), methods, {0.0, 0.5});
  ASSERT_EQ(del.size(), 4u);
  EXPECT_DOUBLE_EQ(del[0].ws_factor, 1.0);  // rate+WS, clean
  EXPECT_DOUBLE_EQ(del[1].ws_factor,
                   static_cast<double>(weight_scaling_factor(0.5)));
  EXPECT_DOUBLE_EQ(del[2].ws_factor, 1.0);  // rate, clean
  EXPECT_DOUBLE_EQ(del[3].ws_factor, 1.0);  // rate, p=0.5

  // Jitter: "+WS" methods intentionally run unscaled (no charge is lost);
  // the rows must say so.
  const auto jit = jitter_sweep(f.inputs(), methods, {0.0, 2.0});
  ASSERT_EQ(jit.size(), 4u);
  for (const SweepRow& r : jit) {
    EXPECT_DOUBLE_EQ(r.ws_factor, 1.0) << r.method << " sigma " << r.level;
  }
  EXPECT_EQ(jit[0].method, "rate+WS");  // label still names the method spec
}

TEST(ScaledModelCache, SharesBaseAndCachesPerFactor) {
  const Fixture f;
  ScaledModelCache cache(f.model);

  // Factor 1 is the base model itself, never a clone.
  EXPECT_EQ(&cache.get(1.0f), &f.model);
  EXPECT_EQ(cache.num_clones(), 0u);

  const snn::SnnModel& a = cache.get(2.0f);
  EXPECT_NE(&a, &f.model);
  EXPECT_EQ(cache.num_clones(), 1u);

  // A cache hit returns the same clone; a new factor materializes one more.
  EXPECT_EQ(&cache.get(2.0f), &a);
  EXPECT_EQ(cache.num_clones(), 1u);
  const snn::SnnModel& b = cache.get(4.0f);
  EXPECT_NE(&b, &a);
  EXPECT_EQ(cache.num_clones(), 2u);
  EXPECT_EQ(&cache.get(2.0f), &a);
  EXPECT_EQ(&cache.get(4.0f), &b);
}

TEST(ScaledModelCache, CloneCarriesScaledWeights) {
  const Fixture f;
  ScaledModelCache cache(f.model);
  const snn::SnnModel& scaled = cache.get(3.0f);
  const Tensor& base_w =
      static_cast<const snn::DenseTopology&>(*f.model.stage(0).synapse).weight();
  const Tensor& scaled_w =
      static_cast<const snn::DenseTopology&>(*scaled.stage(0).synapse).weight();
  ASSERT_EQ(base_w.numel(), scaled_w.numel());
  for (std::size_t i = 0; i < base_w.numel(); ++i) {
    EXPECT_FLOAT_EQ(scaled_w[i], 3.0f * base_w[i]);
  }
}

}  // namespace
}  // namespace tsnn::core
