// Tests for the experiment harness (method specs and noise sweeps).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/experiment.h"
#include "snn/topology.h"

namespace tsnn::core {
namespace {

using snn::Coding;

snn::SnnModel tiny_model() {
  snn::SnnModel model(Shape{4});
  Tensor eye{Shape{4, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    eye(i, i) = 1.0f;
  }
  model.add_stage("hidden", std::make_unique<snn::DenseTopology>(eye));
  Tensor readout{Shape{2, 4}, {1, 1, 0, 0, 0, 0, 1, 1}};
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(readout));
  return model;
}

struct Fixture {
  snn::SnnModel model = tiny_model();
  std::vector<Tensor> images;
  std::vector<std::size_t> labels;

  Fixture() {
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
      Tensor x{Shape{4}};
      const std::size_t cls = i % 2;
      for (std::size_t j = 0; j < 4; ++j) {
        const bool hot = (j / 2) == cls;
        x[j] = static_cast<float>(rng.uniform(hot ? 0.6 : 0.05, hot ? 0.9 : 0.2));
      }
      images.push_back(std::move(x));
      labels.push_back(cls);
    }
  }

  SweepInputs inputs() const {
    SweepInputs in;
    in.model = &model;
    in.images = &images;
    in.labels = &labels;
    return in;
  }
};

TEST(MethodSpec, BaselineLabels) {
  EXPECT_EQ(baseline_method(Coding::kRate, false).label, "rate");
  EXPECT_EQ(baseline_method(Coding::kBurst, true).label, "burst+WS");
  EXPECT_TRUE(baseline_method(Coding::kBurst, true).weight_scaling);
}

TEST(MethodSpec, TtasLabels) {
  const MethodSpec spec = ttas_method(5, true);
  EXPECT_EQ(spec.label, "ttas(5)+WS");
  EXPECT_EQ(spec.params.burst_duration, 5u);
  EXPECT_EQ(spec.coding, Coding::kTtas);
}

TEST(DeletionSweep, ProducesRowPerMethodAndLevel) {
  const Fixture f;
  const std::vector<MethodSpec> methods{baseline_method(Coding::kRate, false),
                                        ttas_method(3, true)};
  const std::vector<double> levels{0.0, 0.3, 0.6};
  const auto rows = deletion_sweep(f.inputs(), methods, levels);
  ASSERT_EQ(rows.size(), 6u);
  for (const SweepRow& r : rows) {
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
    EXPECT_GT(r.mean_spikes, 0.0);
  }
}

TEST(DeletionSweep, CleanLevelIsNoiseless) {
  const Fixture f;
  const auto rows = deletion_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].accuracy, 1.0);  // tiny problem is separable
}

TEST(DeletionSweep, SpikesDecreaseWithP) {
  const Fixture f;
  const auto rows = deletion_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0, 0.5, 0.9});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_GT(rows[0].mean_spikes, rows[1].mean_spikes);
  EXPECT_GT(rows[1].mean_spikes, rows[2].mean_spikes);
}

TEST(JitterSweep, SpikeCountStableUnderJitter) {
  const Fixture f;
  const auto rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {0.0, 2.0});
  ASSERT_EQ(rows.size(), 2u);
  // Jitter never deletes: spike counts stay within a few percent (layer
  // dynamics can shift slightly).
  EXPECT_NEAR(rows[1].mean_spikes / rows[0].mean_spikes, 1.0, 0.1);
}

TEST(JitterSweep, WeightScalingNotAppliedForJitter) {
  // WS compensates charge loss; jitter loses no charge, so a WS method at
  // jitter level sigma uses the unscaled model and matches the non-WS one.
  const Fixture f;
  const auto ws_rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, true)}, {1.0});
  const auto plain_rows = jitter_sweep(
      f.inputs(), {baseline_method(Coding::kRate, false)}, {1.0});
  EXPECT_DOUBLE_EQ(ws_rows[0].accuracy, plain_rows[0].accuracy);
  EXPECT_DOUBLE_EQ(ws_rows[0].mean_spikes, plain_rows[0].mean_spikes);
}

TEST(Sweep, RowsForFiltersByMethod) {
  std::vector<SweepRow> rows{{"a", 0, 1, 1}, {"b", 0, 1, 1}, {"a", 1, 0.5, 1}};
  const auto only_a = rows_for(rows, "a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].level, 1.0);
  EXPECT_TRUE(rows_for(rows, "c").empty());
}

TEST(Sweep, ValidatesInputs) {
  SweepInputs in;  // null everything
  EXPECT_THROW(deletion_sweep(in, {}, {}), InvalidArgument);
}

TEST(Sweep, DeterministicForSeed) {
  const Fixture f;
  SweepInputs in = f.inputs();
  in.seed = 123;
  const auto a = deletion_sweep(in, {baseline_method(Coding::kRate, false)}, {0.4});
  const auto b = deletion_sweep(in, {baseline_method(Coding::kRate, false)}, {0.4});
  EXPECT_DOUBLE_EQ(a[0].accuracy, b[0].accuracy);
  EXPECT_DOUBLE_EQ(a[0].mean_spikes, b[0].mean_spikes);
}

}  // namespace
}  // namespace tsnn::core
