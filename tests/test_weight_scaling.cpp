// Tests for weight scaling: factor math and the compensation property.
#include <gtest/gtest.h>

#include "coding/registry.h"
#include "common/error.h"
#include "core/weight_scaling.h"
#include "noise/deletion.h"
#include "snn/topology.h"
#include "tensor/stats.h"

namespace tsnn::core {
namespace {

TEST(WeightScaling, FactorRestoresMean) {
  EXPECT_FLOAT_EQ(weight_scaling_factor(0.0), 1.0f);
  EXPECT_FLOAT_EQ(weight_scaling_factor(0.5), 2.0f);
  EXPECT_FLOAT_EQ(weight_scaling_factor(0.8), 5.0f);
  EXPECT_NEAR(weight_scaling_factor(0.2) * (1.0 - 0.2), 1.0, 1e-6);
}

TEST(WeightScaling, FactorIncreasesWithP) {
  float prev = 0.0f;
  for (double p = 0.0; p < 0.95; p += 0.1) {
    const float c = weight_scaling_factor(p);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(WeightScaling, RejectsInvalidP) {
  EXPECT_THROW(weight_scaling_factor(1.0), InvalidArgument);
  EXPECT_THROW(weight_scaling_factor(-0.1), InvalidArgument);
}

TEST(WeightScaling, ScalesAllStages) {
  snn::SnnModel model(Shape{2});
  model.add_stage("fc1", std::make_unique<snn::DenseTopology>(
                             Tensor{Shape{2, 2}, {1, 0, 0, 1}}));
  model.add_stage("fc2", std::make_unique<snn::DenseTopology>(
                             Tensor{Shape{1, 2}, {1, 1}}));
  apply_weight_scaling(model, 0.5);  // C = 2

  std::vector<float> u(2, 0.0f);
  model.stage(0).synapse->accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 2.0f);
  std::vector<float> v(1, 0.0f);
  model.stage(1).synapse->accumulate(0, 1.0f, v.data());
  EXPECT_FLOAT_EQ(v[0], 2.0f);
}

TEST(WeightScaling, WithWeightScalingLeavesOriginalUntouched) {
  snn::SnnModel model(Shape{1});
  model.add_stage("fc", std::make_unique<snn::DenseTopology>(
                            Tensor{Shape{1, 1}, {1.0f}}));
  const snn::SnnModel scaled = with_weight_scaling(model, 0.75);

  std::vector<float> u(1, 0.0f);
  model.stage(0).synapse->accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 1.0f);
  u[0] = 0.0f;
  scaled.stage(0).synapse->accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 4.0f);
}

TEST(WeightScaling, CompensatesDeletedRateCode) {
  // Statistical property behind Fig. 4: decoded activation after deletion,
  // multiplied by C = 1/(1-p), recovers the clean value in expectation.
  const auto scheme = coding::make_scheme(snn::Coding::kRate);
  Tensor a{Shape{1}, {0.5f}};
  const auto clean = scheme->encode(a);
  const float clean_value = scheme->decode(clean)[0];

  for (const double p : {0.2, 0.5, 0.8}) {
    noise::DeletionNoise noise(p);
    Rng rng(61);
    std::vector<float> compensated;
    for (int i = 0; i < 500; ++i) {
      const float v = scheme->decode(noise.apply(clean, rng))[0];
      compensated.push_back(v * weight_scaling_factor(p));
    }
    EXPECT_NEAR(stats::mean(compensated), clean_value, 0.05) << "p=" << p;
  }
}

TEST(WeightScaling, OverActivatesSurvivingTtfsSpikes) {
  // The paper's motivation for TTAS: with TTFS, weight scaling turns the
  // surviving all-or-none activations into C*A (over-activation), while the
  // deleted ones stay 0 -- the mean is right but every sample is wrong.
  const auto scheme = coding::make_scheme(snn::Coding::kTtfs);
  Tensor a{Shape{1}, {0.5f}};
  const auto clean = scheme->encode(a);
  const float clean_value = scheme->decode(clean)[0];
  const double p = 0.5;
  noise::DeletionNoise noise(p);
  Rng rng(67);
  int exact = 0;
  for (int i = 0; i < 400; ++i) {
    const float v =
        scheme->decode(noise.apply(clean, rng))[0] * weight_scaling_factor(p);
    // Delivered value is either 0 or C*A; never the clean A.
    const bool is_zero = v < 1e-6f;
    const bool is_over = std::abs(v - 2.0f * clean_value) < 1e-3f;
    EXPECT_TRUE(is_zero || is_over);
    exact += std::abs(v - clean_value) < 1e-3f ? 1 : 0;
  }
  EXPECT_EQ(exact, 0);
}

}  // namespace
}  // namespace tsnn::core
