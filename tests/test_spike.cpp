// Tests for spike-train structures and statistics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "snn/spike.h"
#include "snn/spike_stats.h"

namespace tsnn::snn {
namespace {

TEST(SpikeRaster, ConstructionAndBounds) {
  SpikeRaster r(4, 10);
  EXPECT_EQ(r.num_neurons(), 4u);
  EXPECT_EQ(r.window(), 10u);
  EXPECT_EQ(r.total_spikes(), 0u);
  EXPECT_THROW(SpikeRaster(0, 10), InvalidArgument);
  EXPECT_THROW(SpikeRaster(4, 0), InvalidArgument);
}

TEST(SpikeRaster, AddAndQuery) {
  SpikeRaster r(4, 10);
  r.add(0, 1);
  r.add(0, 2);
  r.add(5, 1);
  EXPECT_EQ(r.total_spikes(), 3u);
  EXPECT_EQ(r.at(0).size(), 2u);
  EXPECT_EQ(r.at(5).size(), 1u);
  EXPECT_EQ(r.at(9).size(), 0u);
  EXPECT_EQ(r.spikes_of(1), 2u);
  EXPECT_EQ(r.spikes_of(3), 0u);
  EXPECT_EQ(r.first_spike_time(1), 0);
  EXPECT_EQ(r.first_spike_time(3), -1);
}

TEST(SpikeRaster, AddRejectsOutOfRange) {
  SpikeRaster r(4, 10);
  EXPECT_THROW(r.add(10, 0), InvalidArgument);
  EXPECT_THROW(r.add(0, 4), InvalidArgument);
  EXPECT_THROW(r.at(10), InvalidArgument);
}

TEST(SpikeRaster, EventRoundTrip) {
  SpikeRaster r(3, 8);
  r.add(1, 0);
  r.add(1, 2);
  r.add(7, 1);
  const auto events = r.to_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (SpikeEvent{0, 1}));
  EXPECT_EQ(events[1], (SpikeEvent{2, 1}));
  EXPECT_EQ(events[2], (SpikeEvent{1, 7}));

  const SpikeRaster rebuilt = SpikeRaster::from_events(3, 8, events);
  EXPECT_EQ(rebuilt.total_spikes(), 3u);
  EXPECT_EQ(rebuilt.at(1).size(), 2u);
}

TEST(SpikeRaster, FromEventsValidatesWindow) {
  EXPECT_THROW(SpikeRaster::from_events(2, 4, {{0, 5}}), InvalidArgument);
  EXPECT_THROW(SpikeRaster::from_events(2, 4, {{0, -1}}), InvalidArgument);
}

TEST(SpikeStats, SummaryValues) {
  SpikeRaster r(3, 10);
  r.add(2, 0);
  r.add(4, 0);
  r.add(6, 1);
  const RasterStats s = raster_stats(r);
  EXPECT_EQ(s.total_spikes, 3u);
  EXPECT_EQ(s.active_neurons, 2u);
  EXPECT_DOUBLE_EQ(s.mean_spikes_per_active, 1.5);
  EXPECT_DOUBLE_EQ(s.mean_spike_time, 4.0);
  EXPECT_EQ(s.first_time, 2);
  EXPECT_EQ(s.last_time, 6);
}

TEST(SpikeStats, SilentRaster) {
  SpikeRaster r(3, 10);
  const RasterStats s = raster_stats(r);
  EXPECT_EQ(s.total_spikes, 0u);
  EXPECT_EQ(s.active_neurons, 0u);
  EXPECT_EQ(s.first_time, -1);
  EXPECT_EQ(s.last_time, -1);
}

TEST(SpikeStats, PerStepCounts) {
  SpikeRaster r(2, 4);
  r.add(0, 0);
  r.add(0, 1);
  r.add(3, 0);
  const auto counts = spikes_per_step(r);
  EXPECT_EQ(counts, (std::vector<std::size_t>{2, 0, 0, 1}));
}

TEST(SpikeStats, MeanSpikeTimePerNeuron) {
  SpikeRaster r(3, 10);
  r.add(2, 0);
  r.add(6, 0);
  r.add(5, 2);
  const auto means = mean_spike_time_per_neuron(r);
  EXPECT_DOUBLE_EQ(means[0], 4.0);
  EXPECT_DOUBLE_EQ(means[1], -1.0);
  EXPECT_DOUBLE_EQ(means[2], 5.0);
}

}  // namespace
}  // namespace tsnn::snn
