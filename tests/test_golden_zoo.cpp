// Golden-conformance suite over the model zoo: fixed-seed accuracy, spike
// counts, and logits pinned for all 3 zoo models x 5 coding schemes x
// {clean, deletion, jitter} at TSNN_FAST scale.
//
// Four PRs of hot-path rewrites (batched propagation, event buffers, grid
// scheduling, the scenario engine) have each promised bit-identical
// results; this suite makes that promise enforceable END TO END -- training,
// conversion, encoding, simulation, noise, readout -- so the next rewrite
// cannot silently drift. Everything below is a pure function of fixed
// seeds: the datasets, the fast-mode training run, the conversion
// calibration, and the per-image noise streams. The suite reads through the
// persistent TSNZ artifact cache (warm cache = sub-second run; a cache hit
// is bit-identical to fresh conversion, which CacheHitMatchesFreshConvert
// pins in-process).
//
// Regenerating (after an INTENTIONAL semantics change only -- an accidental
// mismatch is a bug in the change, not in the goldens):
//   TSNN_GOLDEN_REGEN=1 ./build/test_golden_zoo
// prints the new kGolden table to stdout; paste it over the one below.
//
// Tolerances: accuracy and mean_spikes are exact rationals of integer
// counts and must match bit-for-bit. Logits carry a 1e-5 relative
// tolerance, like the simulator goldens in test_event_buffer.cpp, to
// absorb libm variation across platforms; on the capture platform the
// match is bit-exact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "coding/registry.h"
#include "common/rng.h"
#include "core/scenario.h"
#include "core/zoo.h"
#include "noise/noise.h"
#include "snn/simulator.h"

namespace tsnn::core {
namespace {

constexpr std::size_t kImages = 10;       ///< evaluation images per config
constexpr std::uint64_t kSeed = 0xBEEF;   ///< base of the per-image streams
constexpr double kDeletionP = 0.5;
constexpr double kJitterSigma = 2.0;

const std::vector<std::string>& method_labels() {
  static const std::vector<std::string> kLabels = {"rate", "phase", "burst",
                                                   "ttfs", "ttas(5)"};
  return kLabels;
}

const std::vector<std::string>& conditions() {
  static const std::vector<std::string> kConditions = {"clean", "deletion",
                                                       "jitter"};
  return kConditions;
}

snn::NoiseModelPtr make_condition_noise(const std::string& condition) {
  if (condition == "deletion") {
    return noise::make_deletion(kDeletionP);
  }
  if (condition == "jitter") {
    return noise::make_jitter(kJitterSigma);
  }
  return nullptr;  // clean
}

/// One measured configuration.
struct Measured {
  double accuracy = 0.0;
  double mean_spikes = 0.0;
  float logit0 = 0.0f;  ///< first three logits of image 0
  float logit1 = 0.0f;
  float logit2 = 0.0f;
  std::size_t spikes0 = 0;  ///< total spikes of image 0
};

/// The pinned values, regenerated via TSNN_GOLDEN_REGEN=1 (see file
/// comment). Order: dataset-major, then method, then condition.
struct Golden {
  const char* dataset;
  const char* method;
  const char* condition;
  double accuracy;
  double mean_spikes;
  double logit0;
  double logit1;
  double logit2;
  std::size_t spikes0;
};

constexpr Golden kGolden[] = {
    // clang-format off
    {"s-mnist", "rate", "clean", 0.10000000000000001, 28238.200000000001,
     20.8443604, -18.8488598, 11.3078451, 33557},
    {"s-mnist", "rate", "deletion", 0, 4004,
     0, 0, 0, 5073},
    {"s-mnist", "rate", "jitter", 0.10000000000000001, 28304.299999999999,
     20.6109619, -18.5488682, 10.706912, 33562},
    {"s-mnist", "phase", "clean", 0.10000000000000001, 82379,
     5.48051691, -4.70388699, 2.89520764, 86964},
    {"s-mnist", "phase", "deletion", 0.10000000000000001, 20490.299999999999,
     0.01656905, -0.0152744781, 0.0191000048, 22575},
    {"s-mnist", "phase", "jitter", 0, 109615.8,
     18.7949371, -11.9931803, 6.56463099, 112647},
    {"s-mnist", "burst", "clean", 0.10000000000000001, 46226.599999999999,
     49.2130928, -42.2050743, 25.4764977, 52142},
    {"s-mnist", "burst", "deletion", 0, 7120.3000000000002,
     0, 0, 0, 8820},
    {"s-mnist", "burst", "jitter", 0.10000000000000001, 48550.400000000001,
     35.4659576, -47.7545891, 22.3888206, 54476},
    {"s-mnist", "ttfs", "clean", 0.10000000000000001, 3462.5999999999999,
     1.09121156, -0.776443899, 0.445109099, 3440},
    {"s-mnist", "ttfs", "deletion", 0.20000000000000001, 1787.2,
     0.00891345367, -0.00647056708, 0.012145469, 1808},
    {"s-mnist", "ttfs", "jitter", 0.10000000000000001, 3577.5,
     0.890669107, -0.947742641, 0.484641075, 3542},
    {"s-mnist", "ttas(5)", "clean", 0.10000000000000001, 17313,
     1.09121132, -0.776444197, 0.445109069, 17200},
    {"s-mnist", "ttas(5)", "deletion", 0.10000000000000001, 8973.5,
     0.00183546927, -0.00728516001, 0.00255147601, 8913},
    {"s-mnist", "ttas(5)", "jitter", 0.40000000000000002, 17425,
     1.05654109, -1.11291742, 0.69342351, 17415},
    {"s-cifar10", "rate", "clean", 0, 35470.599999999999,
     -0.0219225213, -0.0742134079, -0.0474917814, 31562},
    {"s-cifar10", "rate", "deletion", 0, 11151.4,
     0, 0, 0, 11720},
    {"s-cifar10", "rate", "jitter", 0, 35810.199999999997,
     -0.00724861771, -0.0701224208, -0.060967423, 31925},
    {"s-cifar10", "phase", "clean", 0, 74312.199999999997,
     0.0316524617, -0.0330211036, -0.00569298584, 64299},
    {"s-cifar10", "phase", "deletion", 0.10000000000000001, 23347.400000000001,
     0.000995918876, -0.00208872161, 0.000880521722, 22487},
    {"s-cifar10", "phase", "jitter", 0.20000000000000001, 87730.699999999997,
     3.41935635, 0.323412627, -0.99388355, 82665},
    {"s-cifar10", "burst", "clean", 0, 50090.699999999997,
     0.095181115, -0.201263517, -0.0621016473, 42140},
    {"s-cifar10", "burst", "deletion", 0, 13832.5,
     0, 0, 0, 14494},
    {"s-cifar10", "burst", "jitter", 0.10000000000000001, 53130.900000000001,
     -0.242609069, 0.0141143659, 0.940854311, 48319},
    {"s-cifar10", "ttfs", "clean", 0, 2824.4000000000001,
     0.00966000557, -0.00290870108, 0.00354940374, 2642},
    {"s-cifar10", "ttfs", "deletion", 0.10000000000000001, 1617.2,
     0.00349562545, -0.00559207983, -0.00266249385, 1583},
    {"s-cifar10", "ttfs", "jitter", 0.10000000000000001, 2994.0999999999999,
     0.164904341, 0.0981270671, -0.0138788847, 2872},
    {"s-cifar10", "ttas(5)", "clean", 0, 14122,
     0.00966000836, -0.00290870131, 0.00354940235, 13210},
    {"s-cifar10", "ttas(5)", "deletion", 0, 7549.6000000000004,
     -0.000196979745, 0.000312426564, -0.000167338862, 7496},
    {"s-cifar10", "ttas(5)", "jitter", 0.10000000000000001, 14324,
     0.126597464, -0.162832499, 0.0141253518, 13575},
    {"s-cifar20", "rate", "clean", 0.20000000000000001, 45408.400000000001,
     3.08296466, 3.03859544, -2.49609971, 46272},
    {"s-cifar20", "rate", "deletion", 0, 12217.9,
     0, 0, 0, 13414},
    {"s-cifar20", "rate", "jitter", 0.20000000000000001, 45522.900000000001,
     3.09423375, 3.12953067, -2.30553246, 46442},
    {"s-cifar20", "phase", "clean", 0.20000000000000001, 93373.300000000003,
     0.809475482, 0.883767962, -0.636608064, 92798},
    {"s-cifar20", "phase", "deletion", 0.10000000000000001, 27384.299999999999,
     0.00492393225, 0.00214561936, -0.00629897369, 27871},
    {"s-cifar20", "phase", "jitter", 0.10000000000000001, 103017.39999999999,
     -0.41719076, 2.64318967, -3.02412629, 103920},
    {"s-cifar20", "burst", "clean", 0.20000000000000001, 65249.699999999997,
     7.04180908, 7.58997965, -4.95448875, 65908},
    {"s-cifar20", "burst", "deletion", 0, 14676.5,
     0, 0, 0, 15609},
    {"s-cifar20", "burst", "jitter", 0.20000000000000001, 67265,
     3.59222937, 7.23220301, -4.64380169, 68364},
    {"s-cifar20", "ttfs", "clean", 0.10000000000000001, 3169.5999999999999,
     0.158951029, 0.155002698, -0.100333318, 3165},
    {"s-cifar20", "ttfs", "deletion", 0.10000000000000001, 1851.9000000000001,
     -0.00162796362, 0.000232266626, -0.00432633236, 1832},
    {"s-cifar20", "ttfs", "jitter", 0.20000000000000001, 3462.0999999999999,
     0.144353762, 0.119737215, -0.168912157, 3500},
    {"s-cifar20", "ttas(5)", "clean", 0.10000000000000001, 15848,
     0.158951059, 0.155002698, -0.100333296, 15825},
    {"s-cifar20", "ttas(5)", "deletion", 0.20000000000000001, 8795,
     -0.000290183933, 6.98028307e-05, -0.00265245559, 8857},
    {"s-cifar20", "ttas(5)", "jitter", 0.10000000000000001, 16315,
     0.150340542, 0.187343791, -0.215475738, 16350},
    // clang-format on
};

bool regen_mode() { return std::getenv("TSNN_GOLDEN_REGEN") != nullptr; }

/// Loads the three fast zoo models once per process. Cache-hit conversion
/// is bit-identical to fresh conversion (pinned by CacheHitMatchesFreshConvert
/// below), so the suite runs against the persistent TSNN_ZOO_DIR artifact
/// cache: a warm cache makes the whole suite a sub-second `fast` test, a
/// cold one trains deterministically and leaves the cache warm. Under
/// TSNN_GOLDEN_REGEN=1 a scratch dir forces fresh training -- the goldens
/// pin training itself, so regeneration must never read a stale cache.
const std::vector<ZooWorkload>& workloads() {
  static const std::vector<ZooWorkload>* kWorkloads = [] {
    setenv("TSNN_FAST", "1", 1);
    std::string scratch;
    if (regen_mode()) {
      scratch =
          (std::filesystem::temp_directory_path() / "tsnn_golden_zoo").string();
      std::filesystem::remove_all(scratch);
      setenv("TSNN_ZOO_DIR", scratch.c_str(), 1);
    }
    auto* loaded = new std::vector<ZooWorkload>();
    for (const DatasetKind kind :
         {DatasetKind::kMnistLike, DatasetKind::kCifar10Like,
          DatasetKind::kCifar20Like}) {
      loaded->push_back(load_zoo_workload(kind, kImages));
    }
    if (regen_mode()) {
      unsetenv("TSNN_ZOO_DIR");
      std::filesystem::remove_all(scratch);
    }
    return loaded;
  }();
  return *kWorkloads;
}

Measured measure(const ZooWorkload& w, const std::string& method,
                 const std::string& condition) {
  const MethodSpec spec = parse_method_label(method);
  const snn::CodingSchemePtr scheme =
      coding::make_scheme(spec.coding, spec.params);
  const snn::NoiseModelPtr noise = make_condition_noise(condition);

  snn::EvalOptions options;
  options.base_seed = kSeed;
  options.num_threads = 1;
  const snn::BatchResult batch =
      snn::evaluate(w.conversion.model, *scheme, w.test_images, w.test_labels,
                    noise.get(), options);

  Measured m;
  m.accuracy = batch.accuracy;
  m.mean_spikes = batch.mean_spikes_per_image;

  // Image 0 under its evaluate() stream: logits pin the full numeric path,
  // not just the argmax.
  snn::SimResult r;
  if (noise == nullptr) {
    r = snn::simulate(snn::SimRequest{&w.conversion.model, scheme.get()},
                      w.test_images[0]);
  } else {
    Rng rng = Rng::for_stream(kSeed, 0);
    r = snn::simulate(
        snn::SimRequest{&w.conversion.model, scheme.get(), noise.get(), &rng},
        w.test_images[0]);
  }
  m.logit0 = r.logits[0];
  m.logit1 = r.logits[1];
  m.logit2 = r.logits[2];
  m.spikes0 = r.total_spikes;
  return m;
}

TEST(GoldenZoo, FixedSeedResultsArePinned) {
  const bool regen = std::getenv("TSNN_GOLDEN_REGEN") != nullptr;
  const std::size_t expected =
      workloads().size() * method_labels().size() * conditions().size();

  if (regen) {
    std::printf("constexpr Golden kGolden[] = {\n    // clang-format off\n");
  } else {
    ASSERT_EQ(std::size(kGolden), expected)
        << "golden table out of date; regenerate with TSNN_GOLDEN_REGEN=1";
  }

  std::size_t g = 0;
  for (const ZooWorkload& w : workloads()) {
    const std::string dataset = dataset_name(w.kind);
    for (const std::string& method : method_labels()) {
      for (const std::string& condition : conditions()) {
        SCOPED_TRACE(dataset + " / " + method + " / " + condition);
        const Measured m = measure(w, method, condition);
        if (regen) {
          std::printf(
              "    {\"%s\", \"%s\", \"%s\", %.17g, %.17g,\n"
              "     %.9g, %.9g, %.9g, %zu},\n",
              dataset.c_str(), method.c_str(), condition.c_str(), m.accuracy,
              m.mean_spikes, m.logit0, m.logit1, m.logit2, m.spikes0);
          continue;
        }
        const Golden& golden = kGolden[g++];
        ASSERT_STREQ(golden.dataset, dataset.c_str());
        ASSERT_STREQ(golden.method, method.c_str());
        ASSERT_STREQ(golden.condition, condition.c_str());
        EXPECT_EQ(m.accuracy, golden.accuracy);
        EXPECT_EQ(m.mean_spikes, golden.mean_spikes);
        EXPECT_EQ(m.spikes0, golden.spikes0);
        const double logits[3] = {m.logit0, m.logit1, m.logit2};
        const double pinned[3] = {golden.logit0, golden.logit1,
                                  golden.logit2};
        for (int i = 0; i < 3; ++i) {
          EXPECT_NEAR(logits[i], pinned[i],
                      1e-5 * std::abs(pinned[i]) + 1e-7)
              << "logit " << i;
        }
      }
    }
  }
  if (regen) {
    std::printf("    // clang-format on\n};\n");
    GTEST_SKIP() << "regeneration run: table printed to stdout";
  }
}

TEST(GoldenZoo, SourceDnnAccuracyIsPinned) {
  // The trained source DNNs themselves (before conversion): if these move,
  // training or the datasets changed, not the simulator.
  const auto& w = workloads();
  ASSERT_EQ(w.size(), 3u);
  const bool regen = std::getenv("TSNN_GOLDEN_REGEN") != nullptr;
  if (regen) {
    std::printf("// dnn accuracies: %.17g %.17g %.17g\n", w[0].dnn_accuracy,
                w[1].dnn_accuracy, w[2].dnn_accuracy);
    GTEST_SKIP() << "regeneration run";
  }
  constexpr double kDnnAccuracy[3] = {0.29333333333333333, 0.10000000000000001, 0.14249999999999999};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w[i].dnn_accuracy, kDnnAccuracy[i])
        << dataset_name(w[i].kind);
  }
}

TEST(GoldenZoo, CacheHitMatchesFreshConvert) {
  // The TSNZ artifact cache's core promise: a cache hit is bit-identical to
  // converting from scratch, for every model, end to end through simulation.
  if (regen_mode()) {
    GTEST_SKIP() << "regeneration run";
  }
  const auto& ws = workloads();  // warms the cache (and sets TSNN_FAST)
  for (const ZooWorkload& w : ws) {
    SCOPED_TRACE(dataset_name(w.kind));
    const data::DatasetPair data = make_dataset(w.kind);
    ConvertedModel cached = get_or_convert(w.kind, data);
    ASSERT_TRUE(cached.loaded_from_cache);
    ConvertedModel fresh = convert_fresh(w.kind, data);
    EXPECT_EQ(cached.dnn_test_accuracy, fresh.dnn_test_accuracy);

    // The conversion trace must match exactly...
    ASSERT_EQ(cached.conversion.scales.size(), fresh.conversion.scales.size());
    for (std::size_t i = 0; i < fresh.conversion.scales.size(); ++i) {
      EXPECT_EQ(cached.conversion.scales[i].stage_name,
                fresh.conversion.scales[i].stage_name);
      EXPECT_EQ(cached.conversion.scales[i].lambda_in,
                fresh.conversion.scales[i].lambda_in);
      EXPECT_EQ(cached.conversion.scales[i].lambda_out,
                fresh.conversion.scales[i].lambda_out);
    }

    // ...and so must what the models *compute*: same evaluation recipe as
    // the pinned table (rate coding, clean), exact accuracy and spike
    // counts, logits to the table's tolerance.
    const MethodSpec spec = parse_method_label("rate");
    const snn::CodingSchemePtr scheme =
        coding::make_scheme(spec.coding, spec.params);
    const std::vector<Tensor> images(
        data.test.images.begin(),
        data.test.images.begin() + static_cast<std::ptrdiff_t>(kImages));
    const std::vector<std::size_t> labels(
        data.test.labels.begin(),
        data.test.labels.begin() + static_cast<std::ptrdiff_t>(kImages));
    snn::EvalOptions options;
    options.base_seed = kSeed;
    options.num_threads = 1;
    const snn::BatchResult from_cache = snn::evaluate(
        cached.conversion.model, *scheme, images, labels, nullptr, options);
    const snn::BatchResult from_fresh = snn::evaluate(
        fresh.conversion.model, *scheme, images, labels, nullptr, options);
    EXPECT_EQ(from_cache.accuracy, from_fresh.accuracy);
    EXPECT_EQ(from_cache.mean_spikes_per_image,
              from_fresh.mean_spikes_per_image);

    const snn::SimResult rc = snn::simulate(
        snn::SimRequest{&cached.conversion.model, scheme.get()}, images[0]);
    const snn::SimResult rf = snn::simulate(
        snn::SimRequest{&fresh.conversion.model, scheme.get()}, images[0]);
    EXPECT_EQ(rc.total_spikes, rf.total_spikes);
    ASSERT_EQ(rc.logits.numel(), rf.logits.numel());
    for (std::size_t i = 0; i < rf.logits.numel(); ++i) {
      EXPECT_NEAR(rc.logits[i], rf.logits[i],
                  1e-5 * std::abs(rf.logits[i]) + 1e-7)
          << "logit " << i;
    }
  }
}

}  // namespace
}  // namespace tsnn::core
