// Tests for the NoiseRobustPipeline public API and activation analysis.
#include <gtest/gtest.h>

#include "coding/registry.h"
#include "common/rng.h"
#include "core/activation_analysis.h"
#include "core/pipeline.h"
#include "core/ttas.h"
#include "noise/noise.h"
#include "snn/topology.h"

namespace tsnn::core {
namespace {

using snn::Coding;

/// A hand-built two-stage model: identity 4->4 then a 2-class readout that
/// sums the first/last two inputs.
snn::SnnModel tiny_model() {
  snn::SnnModel model(Shape{4});
  Tensor eye{Shape{4, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    eye(i, i) = 1.0f;
  }
  model.add_stage("hidden", std::make_unique<snn::DenseTopology>(eye));
  Tensor readout{Shape{2, 4}, {1, 1, 0, 0, 0, 0, 1, 1}};
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(readout));
  return model;
}

TEST(Pipeline, ClassifiesTinyProblemCleanly) {
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  Tensor lo{Shape{4}, {0.8f, 0.7f, 0.1f, 0.1f}};  // class 0
  Tensor hi{Shape{4}, {0.1f, 0.1f, 0.9f, 0.6f}};  // class 1
  EXPECT_EQ(pipe.run(lo, nullptr).predicted_class, 0u);
  EXPECT_EQ(pipe.run(hi, nullptr).predicted_class, 1u);
}

TEST(Pipeline, EvaluateAggregates) {
  PipelineConfig cfg;
  cfg.coding = Coding::kTtfs;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  std::vector<Tensor> images{Tensor{Shape{4}, {0.8f, 0.7f, 0.1f, 0.1f}},
                             Tensor{Shape{4}, {0.1f, 0.1f, 0.9f, 0.6f}}};
  std::vector<std::size_t> labels{0, 1};
  const auto r = pipe.evaluate(images, labels, nullptr);
  EXPECT_EQ(r.num_images, 2u);
  EXPECT_EQ(r.num_correct, 2u);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_GT(r.mean_spikes_per_image, 0.0);
}

TEST(Pipeline, DefaultParamsComeFromRegistry) {
  PipelineConfig cfg;
  cfg.coding = Coding::kPhase;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  EXPECT_FLOAT_EQ(pipe.scheme().params().threshold, 1.2f);
}

TEST(Pipeline, TtasBurstDurationHonored) {
  PipelineConfig cfg;
  cfg.coding = Coding::kTtas;
  cfg.params.burst_duration = 7;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  EXPECT_EQ(pipe.scheme().params().burst_duration, 7u);
  EXPECT_EQ(pipe.scheme().name(), "ttas(7)");
}

TEST(Pipeline, DefaultConstructedTtasConfigMatchesRegistryDefaults) {
  // A default-constructed config must not silently demote TTAS to TTFS:
  // params.burst_duration defaults to 1, but with use_default_params the
  // registry's t_a (5) wins. Regression test for the old resolve_params
  // quirk where the default config produced ttas(1).
  PipelineConfig cfg;
  ASSERT_EQ(cfg.coding, Coding::kTtas);
  ASSERT_TRUE(cfg.use_default_params);
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  const auto defaults = coding::default_params(Coding::kTtas);
  EXPECT_EQ(pipe.scheme().params().burst_duration, defaults.burst_duration);
  EXPECT_FLOAT_EQ(pipe.scheme().params().threshold, defaults.threshold);
  EXPECT_EQ(pipe.scheme().name(),
            "ttas(" + std::to_string(defaults.burst_duration) + ")");
}

TEST(Pipeline, DefaultParamsIgnoreNonTtasBurstDuration) {
  // For non-TTAS codings use_default_params means exactly the registry
  // defaults; a stray burst_duration in params must not leak through.
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  cfg.params.burst_duration = 9;
  cfg.params.window = 16;  // also ignored
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  const auto defaults = coding::default_params(Coding::kRate);
  EXPECT_EQ(pipe.scheme().params().burst_duration, defaults.burst_duration);
  EXPECT_EQ(pipe.scheme().params().window, defaults.window);
}

TEST(Pipeline, RunIsPureFunctionOfStream) {
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  cfg.noise_seed = 11;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  const Tensor img{Shape{4}, {0.8f, 0.7f, 0.1f, 0.1f}};
  const auto noise = noise::make_deletion(0.5);

  // Back-to-back run() calls with the same stream are identical -- run()
  // holds no mutable rng state (the old order-dependence bug).
  const auto a = pipe.run(img, noise.get());
  const auto b = pipe.run(img, noise.get());
  EXPECT_EQ(a.logits, b.logits);
  EXPECT_EQ(a.total_spikes, b.total_spikes);

  // Distinct streams draw independent corruption...
  const auto s1 = pipe.run(img, noise.get(), 1);
  EXPECT_NE(s1.total_spikes, a.total_spikes);

  // ...and interleaving them does not perturb stream 0.
  const auto c = pipe.run(img, noise.get(), 0);
  EXPECT_EQ(c.logits, a.logits);

  // run(stream = i) matches evaluate()'s image-i corruption contract:
  // both derive from Rng::for_stream(noise_seed, i).
  Rng rng = Rng::for_stream(cfg.noise_seed, 0);
  const auto direct = snn::simulate(
      snn::SimRequest{&pipe.model(), &pipe.scheme(), noise.get(), &rng}, img);
  EXPECT_EQ(direct.logits, a.logits);
}

TEST(Pipeline, ExplicitParamsOverrideDefaults) {
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  cfg.use_default_params = false;
  cfg.params = coding::default_params(Coding::kRate);
  cfg.params.window = 32;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  EXPECT_EQ(pipe.scheme().params().window, 32u);
}

TEST(Pipeline, WeightScalingAppliedToModelCopy) {
  const snn::SnnModel base = tiny_model();
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  cfg.weight_scaling = true;
  cfg.assumed_deletion_p = 0.5;
  NoiseRobustPipeline pipe(base, cfg);
  std::vector<float> u(4, 0.0f);
  pipe.model().stage(0).synapse->accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 2.0f);  // C = 2 applied
  // The caller's model is untouched.
  u.assign(4, 0.0f);
  base.stage(0).synapse->accumulate(0, 1.0f, u.data());
  EXPECT_FLOAT_EQ(u[0], 1.0f);
}

TEST(Pipeline, NoiseEvaluationReproducibleAfterReseed) {
  PipelineConfig cfg;
  cfg.coding = Coding::kRate;
  cfg.noise_seed = 5;
  NoiseRobustPipeline pipe(tiny_model(), cfg);
  std::vector<Tensor> images{Tensor{Shape{4}, {0.8f, 0.7f, 0.1f, 0.1f}},
                             Tensor{Shape{4}, {0.1f, 0.1f, 0.9f, 0.6f}}};
  std::vector<std::size_t> labels{0, 1};
  const auto noise = noise::make_deletion(0.5);
  const auto r1 = pipe.evaluate(images, labels, noise.get());
  pipe.reseed(5);
  const auto r2 = pipe.evaluate(images, labels, noise.get());
  EXPECT_DOUBLE_EQ(r1.mean_spikes_per_image, r2.mean_spikes_per_image);
  EXPECT_EQ(r1.num_correct, r2.num_correct);
}

TEST(ActivationAnalysis, TtfsIsAllOrNone) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.6f;
  cfg.deletion_p = 0.5;
  cfg.trials = 1500;
  const auto dist =
      analyze_activation(*coding::make_scheme(Coding::kTtfs), cfg);
  EXPECT_NEAR(dist.p_zero, 0.5, 0.05);
  EXPECT_NEAR(dist.p_full, 0.5, 0.05);
  EXPECT_NEAR(dist.p_zero + dist.p_full, 1.0, 0.01);
}

TEST(ActivationAnalysis, RateIsConcentratedAroundScaledMean) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.6f;
  cfg.deletion_p = 0.5;
  cfg.trials = 1500;
  const auto dist =
      analyze_activation(*coding::make_scheme(Coding::kRate), cfg);
  EXPECT_NEAR(dist.mean, 0.3, 0.02);   // (1-p) * A
  EXPECT_LT(dist.p_zero, 0.01);        // essentially never fully lost
  EXPECT_LT(dist.p_full, 0.05);        // and essentially never intact
}

TEST(ActivationAnalysis, WeightScalingRestoresMean) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.6f;
  cfg.deletion_p = 0.4;
  cfg.weight_scaling = true;
  cfg.trials = 1500;
  const auto dist =
      analyze_activation(*coding::make_scheme(Coding::kRate), cfg);
  EXPECT_NEAR(dist.mean, 0.6, 0.03);
}

TEST(ActivationAnalysis, TtasSplitsMassTowardEnds) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.6f;
  cfg.deletion_p = 0.5;
  cfg.trials = 1500;
  const auto ttas = analyze_activation(*make_ttas(5), cfg);
  const auto ttfs = analyze_activation(*coding::make_scheme(Coding::kTtfs), cfg);
  const auto rate = analyze_activation(*coding::make_scheme(Coding::kRate), cfg);
  // TTAS keeps more near-full deliveries than rate but loses everything far
  // less often than TTFS (the Fig. 5-B "both ends" distribution).
  EXPECT_GT(ttas.p_full, rate.p_full);
  EXPECT_LT(ttas.p_zero, ttfs.p_zero / 4);
}

TEST(ActivationAnalysis, JitterOnlyMode) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.5f;
  cfg.deletion_p = 0.0;
  cfg.jitter_sigma = 1.0;
  cfg.trials = 500;
  const auto dist =
      analyze_activation(*coding::make_scheme(Coding::kTtfs), cfg);
  EXPECT_GT(dist.stddev, 0.0);
  EXPECT_LT(dist.p_zero, 0.05);  // jitter shifts, never deletes
}

TEST(ActivationAnalysis, RejectsBadConfig) {
  ActivationAnalysisConfig cfg;
  cfg.activation = 0.0f;
  EXPECT_THROW(analyze_activation(*coding::make_scheme(Coding::kRate), cfg),
               InvalidArgument);
}

}  // namespace
}  // namespace tsnn::core
