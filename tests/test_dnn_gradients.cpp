// Numerical gradient checks: central differences vs. backprop for every
// trainable layer and for a full small network.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "dnn/activations.h"
#include "dnn/avgpool.h"
#include "dnn/conv2d.h"
#include "dnn/dense.h"
#include "dnn/flatten.h"
#include "dnn/init.h"
#include "dnn/loss.h"
#include "dnn/network.h"

namespace tsnn::dnn {
namespace {

/// Scalar objective of a layer output used for gradient checking: a fixed
/// random projection so every output element contributes.
class Objective {
 public:
  explicit Objective(std::size_t n, std::uint64_t seed = 99) : coeffs_(Shape{n}) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      coeffs_[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }

  double value(const Tensor& y) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < y.numel(); ++i) {
      acc += coeffs_[i] * y[i];
    }
    return acc;
  }

  Tensor gradient(const Shape& shape) const {
    Tensor g{shape};
    for (std::size_t i = 0; i < g.numel(); ++i) {
      g[i] = coeffs_[i];
    }
    return g;
  }

 private:
  Tensor coeffs_;
};

/// Checks dObjective/dInput and dObjective/dParams of `layer` numerically.
void check_layer_gradients(Layer& layer, const Tensor& x0, double tol = 2e-2) {
  const Tensor y0 = layer.forward(x0.clone(), /*training=*/false);
  const Objective obj(y0.numel());

  for (Param* p : layer.params()) {
    p->zero_grad();
  }
  layer.forward(x0.clone(), false);
  const Tensor grad_in = layer.backward(obj.gradient(y0.shape()));

  const float eps = 1e-3f;
  // Input gradient.
  for (std::size_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0;
    Tensor xm = x0;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = obj.value(layer.forward(xp, false));
    const double fm = obj.value(layer.forward(xm, false));
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input grad mismatch at " << i;
  }
  // Parameter gradients.
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double fp = obj.value(layer.forward(x0.clone(), false));
      p->value[i] = orig - eps;
      const double fm = obj.value(layer.forward(x0.clone(), false));
      p->value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
          << "param grad mismatch in " << p->name << " at " << i;
    }
  }
}

Tensor random_input(const Shape& shape, std::uint64_t seed) {
  Tensor x{shape};
  Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

TEST(Gradients, DenseWithBias) {
  Dense layer("fc", 5, 4, /*use_bias=*/true);
  Rng rng(1);
  he_normal(layer.weight().value, 5, rng);
  check_layer_gradients(layer, random_input(Shape{5}, 2));
}

TEST(Gradients, DenseWithoutBias) {
  Dense layer("fc", 6, 3, /*use_bias=*/false);
  Rng rng(3);
  he_normal(layer.weight().value, 6, rng);
  check_layer_gradients(layer, random_input(Shape{6}, 4));
}

TEST(Gradients, ConvPadded) {
  Conv2dSpec spec{.in_channels = 2, .out_channels = 3, .kernel = 3,
                  .stride = 1, .pad = 1, .use_bias = false};
  Conv2d layer("c", spec);
  Rng rng(5);
  he_normal(layer.weight().value, 2 * 9, rng);
  check_layer_gradients(layer, random_input(Shape{2, 4, 4}, 6));
}

TEST(Gradients, ConvWithBiasNoPad) {
  Conv2dSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3,
                  .stride = 1, .pad = 0, .use_bias = true};
  Conv2d layer("c", spec);
  Rng rng(7);
  he_normal(layer.weight().value, 9, rng);
  check_layer_gradients(layer, random_input(Shape{1, 5, 5}, 8));
}

TEST(Gradients, ConvStride2) {
  Conv2dSpec spec{.in_channels = 1, .out_channels = 2, .kernel = 3,
                  .stride = 2, .pad = 1, .use_bias = false};
  Conv2d layer("c", spec);
  Rng rng(9);
  he_normal(layer.weight().value, 9, rng);
  check_layer_gradients(layer, random_input(Shape{1, 6, 6}, 10));
}

TEST(Gradients, AvgPool) {
  AvgPool layer("p", 2);
  check_layer_gradients(layer, random_input(Shape{2, 4, 4}, 11));
}

TEST(Gradients, ReluAwayFromKink) {
  Relu layer("r");
  // Keep inputs away from zero where ReLU is non-differentiable.
  Tensor x = random_input(Shape{8}, 12);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.1f) {
      x[i] = 0.5f;
    }
  }
  check_layer_gradients(layer, x);
}

TEST(Gradients, FullNetworkLossGradient) {
  // End-to-end: d(cross-entropy)/d(all params) via backprop vs numeric.
  Network net(Shape{1, 4, 4});
  net.add(std::make_unique<Conv2d>(
      "c1", Conv2dSpec{.in_channels = 1, .out_channels = 2, .kernel = 3,
                       .stride = 1, .pad = 1, .use_bias = false}));
  net.add(std::make_unique<Relu>("r1"));
  net.add(std::make_unique<AvgPool>("p1", 2));
  net.add(std::make_unique<Flatten>("f"));
  net.add(std::make_unique<Dense>("fc", 8, 3, false));
  Rng rng(13);
  initialize_network(net, rng);

  const Tensor x = random_input(Shape{1, 4, 4}, 14);
  const std::size_t label = 1;

  net.zero_grad();
  const Tensor logits = net.forward(x, false);
  const LossResult lr = softmax_cross_entropy(logits, label);
  net.backward(lr.grad_logits);

  const float eps = 1e-3f;
  for (Param* p : net.params()) {
    // Spot-check a handful of parameters per tensor to bound runtime.
    const std::size_t step = std::max<std::size_t>(1, p->value.numel() / 7);
    for (std::size_t i = 0; i < p->value.numel(); i += step) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double fp = softmax_cross_entropy(net.forward(x, false), label).loss;
      p->value[i] = orig - eps;
      const double fm = softmax_cross_entropy(net.forward(x, false), label).loss;
      p->value[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, 2e-2 * std::max(1.0, std::fabs(numeric)))
          << p->name << "[" << i << "]";
    }
  }
}

TEST(Gradients, BackwardBeforeForwardThrows) {
  Dense layer("fc", 2, 2);
  EXPECT_THROW(layer.backward(Tensor{Shape{2}}), InvalidArgument);
}

}  // namespace
}  // namespace tsnn::dnn
