// Tests for common utilities: RNG, env, strings, errors.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/env.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace tsnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    acc += rng.uniform();
  }
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(3.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.split();
  // Child continues to produce values not identical to the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForStreamIsPureFunctionOfPair) {
  Rng a = Rng::for_stream(0xBEEF, 12);
  Rng b = Rng::for_stream(0xBEEF, 12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, ForStreamNeighbouringIndicesDecorrelated) {
  Rng a = Rng::for_stream(0xBEEF, 0);
  Rng b = Rng::for_stream(0xBEEF, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForStreamDistinctBaseSeedsDecorrelated) {
  Rng a = Rng::for_stream(1, 5);
  Rng b = Rng::for_stream(2, 5);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Env, StringFallback) {
  unsetenv("TSNN_TEST_VAR");
  EXPECT_EQ(env::get_string("TSNN_TEST_VAR", "dflt"), "dflt");
  setenv("TSNN_TEST_VAR", "value", 1);
  EXPECT_EQ(env::get_string("TSNN_TEST_VAR", "dflt"), "value");
  unsetenv("TSNN_TEST_VAR");
}

TEST(Env, IntParsing) {
  setenv("TSNN_TEST_INT", "123", 1);
  EXPECT_EQ(env::get_int("TSNN_TEST_INT", 0), 123);
  setenv("TSNN_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env::get_int("TSNN_TEST_INT", 7), 7);
  unsetenv("TSNN_TEST_INT");
}

TEST(Env, DoubleParsing) {
  setenv("TSNN_TEST_DBL", "2.75", 1);
  EXPECT_DOUBLE_EQ(env::get_double("TSNN_TEST_DBL", 0.0), 2.75);
  unsetenv("TSNN_TEST_DBL");
  EXPECT_DOUBLE_EQ(env::get_double("TSNN_TEST_DBL", 1.5), 1.5);
}

TEST(Env, BoolParsing) {
  setenv("TSNN_TEST_BOOL", "1", 1);
  EXPECT_TRUE(env::get_bool("TSNN_TEST_BOOL", false));
  setenv("TSNN_TEST_BOOL", "off", 1);
  EXPECT_FALSE(env::get_bool("TSNN_TEST_BOOL", true));
  unsetenv("TSNN_TEST_BOOL");
  EXPECT_TRUE(env::get_bool("TSNN_TEST_BOOL", true));
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(str::join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(str::join({}, "-"), "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(str::trim("  hello \t\n"), "hello");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("x"), "x");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(str::to_lower("AbC-9"), "abc-9");
}

TEST(StringUtil, SciFormatsLikePaperTables) {
  EXPECT_EQ(str::sci(94800.0), "9.48E4");
  EXPECT_EQ(str::sci(3050.0), "3.05E3");
  EXPECT_EQ(str::sci(0.0), "0");
  EXPECT_EQ(str::sci(1.71e7), "1.71E7");
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(str::format_fixed(99.185, 2), "99.19");  // rounds
  EXPECT_EQ(str::format_fixed(1.0, 0), "1");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(str::starts_with("ttas(5)+WS", "ttas"));
  EXPECT_FALSE(str::starts_with("x", "xy"));
  EXPECT_TRUE(str::ends_with("ttas(5)+WS", "+WS"));
  EXPECT_FALSE(str::ends_with("a", "ab"));
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    TSNN_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Error, ShapeCheckThrowsShapeError) {
  EXPECT_THROW(TSNN_CHECK_SHAPE(false, "bad shape"), ShapeError);
}

TEST(Error, HierarchyRootsAtError) {
  try {
    throw IoError("io");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "io");
  }
}

}  // namespace
}  // namespace tsnn
