// Tests for the SS II-B noise taxonomy extensions: static parametric noise
// on the converted model and external input noise on images.
#include <gtest/gtest.h>

#include "coding/registry.h"
#include "common/error.h"
#include "noise/input_noise.h"
#include "noise/static_noise.h"
#include "snn/simulator.h"
#include "snn/topology.h"
#include "tensor/tensor_ops.h"

namespace tsnn::noise {
namespace {

snn::SnnModel tiny_model() {
  snn::SnnModel model(Shape{4});
  Tensor eye{Shape{4, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    eye(i, i) = 1.0f;
  }
  model.add_stage("hidden", std::make_unique<snn::DenseTopology>(eye));
  Tensor readout{Shape{2, 4}, {1, 1, 0, 0, 0, 0, 1, 1}};
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(readout));
  return model;
}

TEST(StaticNoise, ZeroSigmaIsIdentity) {
  const snn::SnnModel base = tiny_model();
  const snn::SnnModel noisy = with_static_noise(base, StaticNoiseConfig{});
  std::vector<float> u_base(4, 0.0f);
  std::vector<float> u_noisy(4, 0.0f);
  base.stage(0).synapse->accumulate(0, 1.0f, u_base.data());
  noisy.stage(0).synapse->accumulate(0, 1.0f, u_noisy.data());
  EXPECT_EQ(u_base, u_noisy);
}

TEST(StaticNoise, WeightSigmaPerturbsWithoutBias) {
  const snn::SnnModel base = tiny_model();
  StaticNoiseConfig cfg;
  cfg.weight_sigma = 0.2;
  // Average perturbation over many seeds is unbiased (multiplicative,
  // zero-mean factor).
  double acc = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    cfg.seed = static_cast<std::uint64_t>(i + 1);
    const snn::SnnModel noisy = with_static_noise(base, cfg);
    std::vector<float> u(4, 0.0f);
    noisy.stage(0).synapse->accumulate(0, 1.0f, u.data());
    acc += u[0];
  }
  EXPECT_NEAR(acc / trials, 1.0, 0.02);
}

TEST(StaticNoise, IsDeterministicPerSeed) {
  const snn::SnnModel base = tiny_model();
  StaticNoiseConfig cfg;
  cfg.weight_sigma = 0.3;
  cfg.seed = 99;
  const snn::SnnModel a = with_static_noise(base, cfg);
  const snn::SnnModel b = with_static_noise(base, cfg);
  std::vector<float> ua(4, 0.0f);
  std::vector<float> ub(4, 0.0f);
  a.stage(0).synapse->accumulate(0, 1.0f, ua.data());
  b.stage(0).synapse->accumulate(0, 1.0f, ub.data());
  EXPECT_EQ(ua, ub);  // static noise: same pattern every time
}

TEST(StaticNoise, StuckAtZeroKillsFraction) {
  Tensor big{Shape{100, 100}, 1.0f};
  snn::SnnModel model(Shape{100});
  model.add_stage("fc", std::make_unique<snn::DenseTopology>(big));
  StaticNoiseConfig cfg;
  cfg.stuck_at_zero = 0.3;
  const snn::SnnModel noisy = with_static_noise(model, cfg);
  std::size_t zeros = 0;
  noisy.stage(0).synapse->map_weights([&](float w) {
    zeros += w == 0.0f ? 1 : 0;
    return w;
  });
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(StaticNoise, RejectsInvalidConfig) {
  StaticNoiseConfig bad;
  bad.weight_sigma = -1.0;
  EXPECT_THROW(with_static_noise(tiny_model(), bad), InvalidArgument);
  bad.weight_sigma = 0.0;
  bad.stuck_at_zero = 1.5;
  EXPECT_THROW(with_static_noise(tiny_model(), bad), InvalidArgument);
}

TEST(ThresholdNoise, PerturbsMultiplicatively) {
  const snn::CodingParams base = coding::default_params(snn::Coding::kRate);
  Rng rng(5);
  double acc = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const snn::CodingParams noisy = with_threshold_noise(base, 0.1, rng);
    EXPECT_GT(noisy.threshold, 0.0f);
    acc += noisy.threshold;
  }
  EXPECT_NEAR(acc / trials, base.threshold, 0.002);
  EXPECT_THROW(with_threshold_noise(base, -0.1, rng), InvalidArgument);
}

TEST(InputNoise, GaussianClampsAndPerturbs) {
  Tensor img{Shape{1, 8, 8}, 0.5f};
  Rng rng(7);
  const Tensor noisy = gaussian_input_noise(img, 0.2, rng);
  EXPECT_GE(ops::min_value(noisy), 0.0f);
  EXPECT_LE(ops::max_value(noisy), 1.0f);
  EXPECT_GT(ops::mean_abs_diff(noisy, img), 0.05);
  // Zero sigma is the identity.
  EXPECT_EQ(gaussian_input_noise(img, 0.0, rng), img);
}

TEST(InputNoise, SaltPepperForcesExtremes) {
  Tensor img{Shape{1, 16, 16}, 0.5f};
  Rng rng(9);
  const Tensor noisy = salt_pepper_input_noise(img, 0.4, rng);
  std::size_t extreme = 0;
  for (std::size_t i = 0; i < noisy.numel(); ++i) {
    if (noisy[i] == 0.0f || noisy[i] == 1.0f) {
      ++extreme;
    }
  }
  EXPECT_NEAR(static_cast<double>(extreme) / 256.0, 0.4, 0.08);
  EXPECT_THROW(salt_pepper_input_noise(img, 1.5, rng), InvalidArgument);
}

TEST(InputNoise, DegradesTinyClassifier) {
  // External noise flows through encoding like any input: accuracy of the
  // tiny 2-class model should fall as input corruption grows.
  const snn::SnnModel model = tiny_model();
  const auto scheme = coding::make_scheme(snn::Coding::kRate);
  Rng data_rng(11);
  std::vector<Tensor> images;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 30; ++i) {
    Tensor x{Shape{4}};
    const std::size_t cls = static_cast<std::size_t>(i % 2);
    for (std::size_t j = 0; j < 4; ++j) {
      const bool hot = (j / 2) == cls;
      x[j] = static_cast<float>(data_rng.uniform(hot ? 0.7 : 0.05, hot ? 0.9 : 0.15));
    }
    images.push_back(std::move(x));
    labels.push_back(cls);
  }
  snn::EvalOptions eval_options;
  eval_options.base_seed = 13;
  const auto clean =
      snn::evaluate(model, *scheme, images, labels, nullptr, eval_options);

  Rng noise_rng(15);
  std::vector<Tensor> corrupted;
  corrupted.reserve(images.size());
  for (const Tensor& img : images) {
    corrupted.push_back(gaussian_input_noise(img, 0.6, noise_rng));
  }
  const auto noisy =
      snn::evaluate(model, *scheme, corrupted, labels, nullptr, eval_options);
  EXPECT_EQ(clean.accuracy, 1.0);
  EXPECT_LT(noisy.accuracy, clean.accuracy);
}

}  // namespace
}  // namespace tsnn::noise
