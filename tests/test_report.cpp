// Tests for table/CSV reporting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "report/csv.h"
#include "report/table.h"

namespace tsnn::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"Method", "Acc"});
  t.add_row({"rate", "92.15"});
  t.add_row({"ttas(5)+WS", "89.95"});
  const std::string s = t.to_string();
  // Header present, separator present, rows present.
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("ttas(5)+WS"), std::string::npos);
  // All lines align: every row line has the Acc column at the same offset.
  const std::size_t header_acc = s.find("Acc");
  const std::size_t row_acc = s.find("92.15");
  EXPECT_EQ(header_acc % (s.find('\n') + 1), row_acc % (s.find('\n') + 1));
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Csv, SerializesRows) {
  CsvWriter csv({"method", "p", "acc"});
  csv.add_row({"rate", "0.5", "0.78"});
  const std::string s = csv.to_string();
  EXPECT_EQ(s, "method,p,acc\nrate,0.5,0.78\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"name"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, QuotesCarriageReturn) {
  // Regression: \r was not in the quote-trigger set, so a method label
  // containing one split (or silently truncated) its record in RFC-4180
  // readers.
  CsvWriter csv({"name", "value"});
  csv.add_row({"has\rreturn", "1"});
  csv.add_row({"has\r\nboth", "2"});
  const std::string s = csv.to_string();
  EXPECT_NE(s.find("\"has\rreturn\",1"), std::string::npos);
  EXPECT_NE(s.find("\"has\r\nboth\",2"), std::string::npos);
}

TEST(CsvStream, StreamsRowsIncrementally) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsnn_stream.csv").string();
  {
    CsvStream stream(path, {"method", "acc"});
    // The header is on disk before any row: a consumer tailing the file
    // (or a killed bench) always sees a valid CSV prefix.
    {
      std::ifstream is(path);
      std::string line;
      std::getline(is, line);
      EXPECT_EQ(line, "method,acc");
    }
    stream.add_row({"rate", "0.9"});
    EXPECT_EQ(stream.num_rows(), 1u);
    std::ifstream is(path);
    std::string line;
    std::getline(is, line);
    std::getline(is, line);
    EXPECT_EQ(line, "rate,0.9");  // flushed as soon as it was added
  }
  std::remove(path.c_str());
}

TEST(CsvStream, MatchesCsvWriterByteForByte) {
  const auto headers = std::vector<std::string>{"method", "p", "acc"};
  const std::vector<std::vector<std::string>> rows{
      {"rate", "0.5", "0.78"}, {"has,comma", "0.2", "1"}, {"q\rr", "0", "0"}};

  CsvWriter writer(headers);
  for (const auto& r : rows) {
    writer.add_row(r);
  }

  const std::string path =
      (std::filesystem::temp_directory_path() / "tsnn_stream_eq.csv").string();
  {
    CsvStream stream(path, headers);
    for (const auto& r : rows) {
      stream.add_row(r);
    }
  }
  std::ifstream is(path, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), writer.to_string());
  std::remove(path.c_str());
}

TEST(CsvStream, OpenFailureThrows) {
  EXPECT_THROW(CsvStream("/nonexistent-dir/x.csv", {"x"}), IoError);
}

TEST(CsvStream, RejectsMismatchedRow) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsnn_stream_bad.csv").string();
  CsvStream stream(path, {"a", "b"});
  EXPECT_THROW(stream.add_row({"1"}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x"});
  csv.add_row({"1"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsnn_test.csv").string();
  csv.write(path);
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x");
  std::getline(is, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
}

TEST(Csv, WriteFailureThrows) {
  CsvWriter csv({"x"});
  EXPECT_THROW(csv.write("/nonexistent-dir/x.csv"), IoError);
}

TEST(Csv, RejectsMismatchedRow) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), InvalidArgument);
}

}  // namespace
}  // namespace tsnn::report
