// Tests for the declarative scenario engine: spec parse round-trips and
// error paths, and scenario output bit-identical to the equivalent direct
// deletion_sweep/jitter_sweep calls at 1/2/8 threads and on external pools.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "core/weight_scaling.h"
#include "noise/device_profile.h"
#include "noise/noise.h"
#include "snn/simulator.h"
#include "snn/topology.h"

namespace tsnn::core {
namespace {

using snn::Coding;

// ----------------------------------------------------------------- parsing --

void expect_methods_equal(const std::vector<MethodSpec>& a,
                          const std::vector<MethodSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << "method " << i;
    EXPECT_EQ(a[i].coding, b[i].coding) << "method " << i;
    EXPECT_EQ(a[i].weight_scaling, b[i].weight_scaling) << "method " << i;
    EXPECT_EQ(a[i].params.burst_duration, b[i].params.burst_duration)
        << "method " << i;
    EXPECT_FLOAT_EQ(a[i].params.threshold, b[i].params.threshold)
        << "method " << i;
  }
}

void expect_specs_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.datasets, b.datasets);
  expect_methods_equal(a.methods, b.methods);
  EXPECT_EQ(a.noise, b.noise);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_EQ(a.images, b.images);
  EXPECT_EQ(a.has_seed, b.has_seed);
  if (a.has_seed) {
    EXPECT_EQ(a.seed, b.seed);
  }
}

TEST(ScenarioSpecParse, ParsesEveryField) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    # a comment
    name = my_scenario
    datasets = s-mnist, s-cifar10
    methods = rate, burst+WS, ttas(5)+WS
    noise = input:0.05, deletion:sweep, jitter:0.5
    levels = 0, 0.1, 0.5
    images = 12
    seed = 1234
  )");
  EXPECT_EQ(spec.name, "my_scenario");
  EXPECT_EQ(spec.datasets,
            (std::vector<std::string>{"s-mnist", "s-cifar10"}));
  ASSERT_EQ(spec.methods.size(), 3u);
  EXPECT_EQ(spec.methods[0].label, "rate");
  EXPECT_EQ(spec.methods[1].label, "burst+WS");
  EXPECT_TRUE(spec.methods[1].weight_scaling);
  EXPECT_EQ(spec.methods[2].label, "ttas(5)+WS");
  EXPECT_EQ(spec.methods[2].params.burst_duration, 5u);
  ASSERT_EQ(spec.noise.size(), 3u);
  EXPECT_EQ(spec.noise[0].kind, NoiseLayerSpec::Kind::kInput);
  EXPECT_DOUBLE_EQ(spec.noise[0].value, 0.05);
  EXPECT_TRUE(spec.noise[1].swept);
  EXPECT_EQ(spec.noise[1].kind, NoiseLayerSpec::Kind::kDeletion);
  EXPECT_EQ(spec.noise[2].kind, NoiseLayerSpec::Kind::kJitter);
  EXPECT_EQ(spec.levels, (std::vector<double>{0.0, 0.1, 0.5}));
  EXPECT_EQ(spec.images, 12u);
  EXPECT_TRUE(spec.has_seed);
  EXPECT_EQ(spec.seed, 1234u);
  EXPECT_EQ(spec.swept_layer(), 1u);
  EXPECT_EQ(spec.level_name(), "p");
}

TEST(ScenarioSpecParse, RoundTripsThroughToText) {
  ScenarioSpec spec;
  spec.name = "round_trip";
  spec.datasets = {"s-cifar10", "s-cifar20"};
  spec.methods = {parse_method_label("phase"), parse_method_label("ttfs+WS"),
                  parse_method_label("ttas(10)")};
  NoiseLayerSpec deletion;
  deletion.kind = NoiseLayerSpec::Kind::kDeletion;
  deletion.value = 0.25;
  NoiseLayerSpec jitter;
  jitter.kind = NoiseLayerSpec::Kind::kJitter;
  jitter.swept = true;
  NoiseLayerSpec device;
  device.kind = NoiseLayerSpec::Kind::kDevice;
  device.device = "mixed-signal";
  spec.noise = {deletion, jitter, device};
  spec.levels = {0.0, 0.5, 1.5, 4.0};
  spec.images = 24;
  spec.seed = 0xBEEF;
  spec.has_seed = true;

  const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_text());
  expect_specs_equal(spec, reparsed);
  // And the canonical form is a fixed point.
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
}

TEST(ScenarioSpecParse, RoundTripsFractionalValuesExactly) {
  ScenarioSpec spec;
  spec.name = "fractions";
  spec.datasets = {"s-mnist"};
  spec.methods = {parse_method_label("rate")};
  NoiseLayerSpec layer;
  layer.kind = NoiseLayerSpec::Kind::kDeletion;
  layer.swept = true;
  spec.noise = {layer};
  spec.levels = {0.1, 0.2, 0.30000000000000004, 1e-3};
  const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_text());
  ASSERT_EQ(reparsed.levels.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reparsed.levels[i], spec.levels[i]) << "level " << i;
  }
}

TEST(ScenarioSpecParse, ParsesMultipleSections) {
  const auto specs = parse_scenarios(
      "[scenario]\nname = a\ndatasets = s-mnist\nmethods = rate\n"
      "[scenario]\nname = b\ndatasets = s-cifar10\nmethods = ttfs\n");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "a");
  EXPECT_EQ(specs[1].name, "b");
  EXPECT_EQ(specs[0].level_name(), "level");  // sweep-less
}

TEST(ScenarioSpecParse, ErrorPaths) {
  // Missing name.
  EXPECT_THROW(ScenarioSpec::parse("datasets = s-mnist\nmethods = rate\n"),
               InvalidArgument);
  // Missing datasets / methods.
  EXPECT_THROW(ScenarioSpec::parse("name = x\nmethods = rate\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"),
               InvalidArgument);
  // Unknown key.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nbogus = 1\n"),
               InvalidArgument);
  // Unknown method label.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = morse\n"),
               InvalidArgument);
  // Bad TTAS burst duration.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = ttas(zero)\n"),
               InvalidArgument);
  // Unknown noise kind and malformed layer.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nnoise = gamma:1\n"
                                   "levels = 0\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nnoise = deletion\n"),
               InvalidArgument);
  // Out-of-range deletion probability.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nnoise = deletion:1.5\n"),
               InvalidArgument);
  // Two swept layers.
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = deletion:sweep, jitter:sweep\n"
                          "levels = 0, 1\n"),
      InvalidArgument);
  // A sweep without levels, and levels without a sweep.
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = deletion:sweep\n"),
      InvalidArgument);
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "levels = 0, 0.5\n"),
      InvalidArgument);
  // device:sweep must not carry levels.
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = device:sweep\nlevels = 0\n"),
      InvalidArgument);
  // Negative TTAS argument must not wrap through strtoull.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = ttas(-1)\n"),
               InvalidArgument);
  // Negative images/seed must not wrap either.
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nimages = -4\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nseed = -1\n"),
               InvalidArgument);
  // Swept levels carry the swept layer's range checks.
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = deletion:sweep\nlevels = 0, -0.5\n"),
      InvalidArgument);
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = deletion:sweep\nlevels = 0, 1.5\n"),
      InvalidArgument);
  EXPECT_THROW(
      ScenarioSpec::parse("name = x\ndatasets = s-mnist\nmethods = rate\n"
                          "noise = jitter:sweep\nlevels = 0, -1\n"),
      InvalidArgument);
  // Duplicate key, bad number, unknown section.
  EXPECT_THROW(ScenarioSpec::parse("name = x\nname = y\n"
                                   "datasets = s-mnist\nmethods = rate\n"),
               InvalidArgument);
  EXPECT_THROW(ScenarioSpec::parse("name = x\ndatasets = s-mnist\n"
                                   "methods = rate\nimages = many\n"),
               InvalidArgument);
  EXPECT_THROW(parse_scenarios("[mystery]\nname = x\n"), InvalidArgument);
  EXPECT_THROW(parse_scenarios("   \n# only comments\n"), InvalidArgument);
}

TEST(ScenarioSpecParse, MethodLabelsInvertHelperLabels) {
  expect_methods_equal({parse_method_label("rate+WS")},
                       {baseline_method(Coding::kRate, true)});
  expect_methods_equal({parse_method_label("ttfs")},
                       {baseline_method(Coding::kTtfs, false)});
  expect_methods_equal({parse_method_label("ttas(7)+WS")},
                       {ttas_method(7, true)});
}

TEST(ScenarioBuiltins, SuitesParseAndAreWellFormed) {
  for (const std::string& name : builtin_suite_names()) {
    const auto specs = builtin_suite(name);
    EXPECT_FALSE(specs.empty()) << name;
    for (const ScenarioSpec& spec : specs) {
      EXPECT_FALSE(spec.name.empty());
      EXPECT_FALSE(spec.datasets.empty());
      EXPECT_FALSE(spec.methods.empty());
    }
  }
  EXPECT_THROW(builtin_suite("no-such-suite"), InvalidArgument);
  // The paper suite names match the bench binaries it replaces.
  const auto paper = builtin_suite("paper");
  ASSERT_EQ(paper.size(), 8u);
  EXPECT_EQ(paper.front().name, "fig2_deletion_codings");
  EXPECT_EQ(paper.back().name, "table2_jitter");
  EXPECT_EQ(paper.back().datasets.size(), 3u);
}

// ------------------------------------------------------------------ engine --

snn::SnnModel tiny_model() {
  snn::SnnModel model(Shape{4});
  Tensor eye{Shape{4, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    eye(i, i) = 1.0f;
  }
  model.add_stage("hidden", std::make_unique<snn::DenseTopology>(eye));
  Tensor readout{Shape{2, 4}, {1, 1, 0, 0, 0, 0, 1, 1}};
  model.add_stage("readout", std::make_unique<snn::DenseTopology>(readout));
  return model;
}

struct Fixture {
  snn::SnnModel model = tiny_model();
  std::vector<Tensor> images;
  std::vector<std::size_t> labels;

  Fixture() {
    Rng rng(3);
    for (int i = 0; i < 12; ++i) {
      Tensor x{Shape{4}};
      const std::size_t cls = i % 2;
      for (std::size_t j = 0; j < 4; ++j) {
        const bool hot = (j / 2) == cls;
        x[j] = static_cast<float>(rng.uniform(hot ? 0.6 : 0.05, hot ? 0.9 : 0.2));
      }
      images.push_back(std::move(x));
      labels.push_back(cls);
    }
  }

  ScenarioWorkload workload() const {
    ScenarioWorkload w;
    w.model = &model;
    w.images = &images;
    w.labels = &labels;
    return w;
  }

  /// Engine options resolving the dataset name "tiny" to this fixture.
  ScenarioEngine::Options options(std::size_t threads,
                                  std::uint64_t seed = 0xBEEF) const {
    ScenarioEngine::Options options;
    options.default_seed = seed;
    options.num_threads = threads;
    options.workload_provider = [this](const std::string& dataset,
                                       std::size_t) {
      return dataset == "tiny" ? workload() : ScenarioWorkload{};
    };
    return options;
  }

  SweepInputs sweep_inputs(std::size_t threads,
                           std::uint64_t seed = 0xBEEF) const {
    SweepInputs in;
    in.model = &model;
    in.images = &images;
    in.labels = &labels;
    in.seed = seed;
    in.num_threads = threads;
    return in;
  }
};

ScenarioSpec tiny_spec(const char* noise_line) {
  return ScenarioSpec::parse(std::string("name = tiny_scenario\n"
                                         "datasets = tiny\n"
                                         "methods = rate, burst+WS, "
                                         "ttas(3)+WS\n") +
                             noise_line);
}

void expect_rows_match_sweep(const std::vector<ScenarioRow>& scenario_rows,
                             const std::vector<SweepRow>& sweep_rows) {
  ASSERT_EQ(scenario_rows.size(), sweep_rows.size());
  for (std::size_t i = 0; i < scenario_rows.size(); ++i) {
    EXPECT_EQ(scenario_rows[i].method, sweep_rows[i].method) << "row " << i;
    EXPECT_EQ(scenario_rows[i].level, sweep_rows[i].level) << "row " << i;
    // Bit-identical, not approximately equal: the scenario engine and the
    // direct sweep must compile to the same grid cells.
    EXPECT_EQ(scenario_rows[i].accuracy, sweep_rows[i].accuracy)
        << "row " << i;
    EXPECT_EQ(scenario_rows[i].mean_spikes, sweep_rows[i].mean_spikes)
        << "row " << i;
    EXPECT_EQ(scenario_rows[i].ws_factor, sweep_rows[i].ws_factor)
        << "row " << i;
  }
}

TEST(ScenarioEngine, DeletionScenarioMatchesDirectSweepAt1_2_8Threads) {
  const Fixture f;
  const ScenarioSpec spec =
      tiny_spec("noise = deletion:sweep\nlevels = 0, 0.3, 0.6\n");
  const auto direct = deletion_sweep(f.sweep_inputs(1), spec.methods,
                                     {0.0, 0.3, 0.6});
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ScenarioEngine engine(f.options(threads));
    const ScenarioResult result = engine.run_one(spec);
    EXPECT_EQ(result.level_name, "p");
    expect_rows_match_sweep(result.rows, direct);
  }
}

TEST(ScenarioEngine, JitterScenarioMatchesDirectSweepAt1_2_8Threads) {
  const Fixture f;
  const ScenarioSpec spec =
      tiny_spec("noise = jitter:sweep\nlevels = 0, 1, 2.5\n");
  const auto direct =
      jitter_sweep(f.sweep_inputs(1), spec.methods, {0.0, 1.0, 2.5});
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ScenarioEngine engine(f.options(threads));
    const ScenarioResult result = engine.run_one(spec);
    EXPECT_EQ(result.level_name, "sigma");
    expect_rows_match_sweep(result.rows, direct);
  }
}

TEST(ScenarioEngine, ExternalPersistentPoolMatchesSerial) {
  const Fixture f;
  const ScenarioSpec spec =
      tiny_spec("noise = deletion:sweep\nlevels = 0, 0.4, 0.7\n");
  const auto direct = deletion_sweep(f.sweep_inputs(1), spec.methods,
                                     {0.0, 0.4, 0.7});
  ThreadPool pool(4);
  ScenarioEngine::Options options = f.options(1);
  options.pool = &pool;
  ScenarioEngine engine(options);
  // Two runs over the same borrowed pool: warm-worker reuse across suites
  // must not perturb results.
  expect_rows_match_sweep(engine.run_one(spec).rows, direct);
  expect_rows_match_sweep(engine.run_one(spec).rows, direct);
}

TEST(ScenarioEngine, RowsStreamInGridOrder) {
  const Fixture f;
  ScenarioSpec spec = tiny_spec("noise = jitter:sweep\nlevels = 0, 1, 2\n");
  ScenarioEngine::Options options = f.options(4);
  std::vector<std::pair<std::size_t, std::string>> streamed;
  options.on_row = [&](std::size_t s, const ScenarioRow& row) {
    streamed.emplace_back(s, row.method + "@" +
                                 std::to_string(row.level));
  };
  ScenarioEngine engine(options);
  const ScenarioResult result = engine.run_one(spec);
  ASSERT_EQ(streamed.size(), result.rows.size());
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(streamed[i].first, 0u);
    EXPECT_EQ(streamed[i].second,
              result.rows[i].method + "@" +
                  std::to_string(result.rows[i].level));
  }
}

TEST(ScenarioEngine, MultiScenarioSuiteKeepsPerScenarioRows) {
  const Fixture f;
  const ScenarioSpec del =
      tiny_spec("noise = deletion:sweep\nlevels = 0, 0.5\n");
  ScenarioSpec clean = ScenarioSpec::parse(
      "name = clean_point\ndatasets = tiny\nmethods = rate, ttfs\n");
  ScenarioEngine engine(f.options(2));
  const auto results = engine.run({del, clean});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rows.size(), 6u);  // 3 methods x 2 levels
  EXPECT_EQ(results[1].rows.size(), 2u);  // 2 methods x 1 clean point
  EXPECT_EQ(results[1].level_name, "level");
  for (const ScenarioRow& row : results[1].rows) {
    EXPECT_EQ(row.noise, "clean");
    EXPECT_EQ(row.ws_factor, 1.0);
  }
}

TEST(ScenarioEngine, FixedStackAppliesWeightScalingFromDeletionComponents) {
  // A fixed (sweep-less) deletion layer still earns +WS methods the paper's
  // compensation, with the factor taken from the stack's deletion total.
  const Fixture f;
  const ScenarioSpec spec = ScenarioSpec::parse(
      "name = fixed\ndatasets = tiny\nmethods = rate, rate+WS\n"
      "noise = deletion:0.4, jitter:0.5\n");
  ScenarioEngine engine(f.options(1));
  const ScenarioResult result = engine.run_one(spec);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].ws_factor, 1.0);
  EXPECT_EQ(result.rows[1].ws_factor,
            static_cast<double>(weight_scaling_factor(0.4)));
  EXPECT_NE(result.rows[0].noise.find("deletion"), std::string::npos);
  EXPECT_NE(result.rows[0].noise.find("jitter"), std::string::npos);
}

TEST(ScenarioEngine, DeviceSweepEnumeratesTheCatalog) {
  const Fixture f;
  const ScenarioSpec spec = ScenarioSpec::parse(
      "name = dev\ndatasets = tiny\nmethods = rate\nnoise = device:sweep\n");
  ScenarioEngine engine(f.options(2));
  const ScenarioResult result = engine.run_one(spec);
  const auto& catalog = noise::device_catalog();
  ASSERT_EQ(result.rows.size(), catalog.size());
  EXPECT_EQ(result.level_name, "device");
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(result.rows[i].level, static_cast<double>(i));
    EXPECT_NE(result.rows[i].noise.find(catalog[i].name), std::string::npos);
  }
  // The clean device really is clean.
  EXPECT_EQ(result.rows[0].noise, "device:" + catalog[0].name);
}

TEST(ScenarioEngine, UnknownDatasetThrows) {
  const Fixture f;
  const ScenarioSpec spec = ScenarioSpec::parse(
      "name = x\ndatasets = no-such-dataset\nmethods = rate\n");
  ScenarioEngine engine(f.options(1));
  EXPECT_THROW(engine.run_one(spec), InvalidArgument);
}

TEST(ScenarioEngine, UnknownDeviceThrowsAtCompile) {
  const Fixture f;
  const ScenarioSpec spec = ScenarioSpec::parse(
      "name = x\ndatasets = tiny\nmethods = rate\n"
      "noise = device:warp-core\n");
  ScenarioEngine engine(f.options(1));
  EXPECT_THROW(engine.run_one(spec), InvalidArgument);
}

TEST(ScenarioEngine, InputNoiseLayerChangesResultsDeterministically) {
  const Fixture f;
  const ScenarioSpec clean = ScenarioSpec::parse(
      "name = clean\ndatasets = tiny\nmethods = rate\n");
  const ScenarioSpec noisy = ScenarioSpec::parse(
      "name = noisy\ndatasets = tiny\nmethods = rate\nnoise = input:0.25\n");
  ScenarioEngine engine(f.options(1));
  const double clean_spikes = engine.run_one(clean).rows[0].mean_spikes;
  const double noisy_a = engine.run_one(noisy).rows[0].mean_spikes;
  const double noisy_b = engine.run_one(noisy).rows[0].mean_spikes;
  EXPECT_EQ(noisy_a, noisy_b);        // fixed seed -> identical corruption
  EXPECT_NE(noisy_a, clean_spikes);   // the corruption really applied
}

}  // namespace
}  // namespace tsnn::core
